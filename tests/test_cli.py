"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scale_choices(self):
        args = build_parser().parse_args(["--scale", "smoke", "stats"])
        assert args.scale == "smoke"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scale", "huge", "stats"])

    def test_search_arguments(self):
        args = build_parser().parse_args(
            ["--scale", "smoke", "search", "cora", "--layers", "2"]
        )
        assert args.dataset == "cora"
        assert args.layers == 2

    def test_table_numbers_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "99"])


class TestCommands:
    def test_stats(self, capsys):
        assert main(["--scale", "smoke", "stats"]) == 0
        out = capsys.readouterr().out
        assert "Table IV" in out
        assert "cora" in out

    def test_baseline(self, capsys):
        assert main(["--scale", "smoke", "baseline", "gcn", "cora"]) == 0
        out = capsys.readouterr().out
        assert "gcn on cora" in out

    def test_search(self, capsys):
        assert main(["--scale", "smoke", "search", "cora", "--layers", "2"]) == 0
        out = capsys.readouterr().out
        assert "architecture:" in out
        assert "test score:" in out

    def test_table4_command(self, capsys):
        assert main(["--scale", "smoke", "table", "4"]) == 0
        assert "Table IV" in capsys.readouterr().out

    def test_table6_restricted_datasets(self, capsys):
        code = main(
            ["--scale", "smoke", "table", "6", "--datasets", "cora"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cora" in out
        assert "pubmed" not in out

    def test_figure2_command(self, capsys):
        code = main(["--scale", "smoke", "figure", "2", "--datasets", "cora"])
        assert code == 0
        assert "Figure 2" in capsys.readouterr().out


class TestProfileCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["profile", "search"])
        assert args.command == "profile"
        assert args.target == "search"
        assert args.dataset == "cora"
        assert args.trace is None
        assert args.top == 10
        assert not args.no_autograd

    def test_scale_after_subcommand_does_not_clobber(self):
        args = build_parser().parse_args(["--scale", "smoke", "profile", "search"])
        assert args.scale == "smoke"
        args = build_parser().parse_args(["profile", "search", "--scale", "smoke"])
        assert args.scale == "smoke"

    def test_profile_search_writes_trace_and_report(self, tmp_path, capsys):
        from repro.obs import read_trace

        trace = tmp_path / "trace.jsonl"
        code = main(
            ["--scale", "smoke", "profile", "search", "--dataset", "cora",
             "--layers", "2", "--trace", str(trace), "--top", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "architecture:" in out
        assert "== Phase breakdown (spans) ==" in out
        assert "autograd ops (by self time)" in out
        assert str(trace) in out

        records = read_trace(trace)
        assert records[0]["type"] == "trace-meta"
        assert any(r["type"] == "span" for r in records)
        assert any(r["type"] == "op_stats" for r in records)

    def test_profile_baseline_without_autograd(self, tmp_path, capsys):
        from repro.obs import read_trace

        trace = tmp_path / "trace.jsonl"
        code = main(
            ["--scale", "smoke", "profile", "baseline", "--name", "gcn",
             "--dataset", "cora", "--trace", str(trace), "--no-autograd"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "gcn on cora" in out
        assert "== Phase breakdown (spans) ==" in out
        op_stats = [r for r in read_trace(trace) if r["type"] == "op_stats"]
        assert op_stats[0]["data"] == []


class TestCommonOptionPlacement:
    """Every subcommand takes --scale/--seed before *and* after its name."""

    CASES = [
        (["stats"], []),
        (["search", "cora"], []),
        (["baseline", "gcn", "cora"], []),
        (["table", "4"], []),
        (["figure", "2"], []),
        (["lint"], []),
        (["profile", "search"], []),
        (["report", "run"], ["events.jsonl"]),
        (["report", "diff"], ["a.jsonl", "b.jsonl"]),
        (["report", "bench"], []),
        (["export", "search"], ["cora"]),
        (["export", "baseline"], ["gcn", "cora"]),
        (["export", "kg"], []),
        (["serve"], ["artifact.json"]),
        (["report", "serve"], ["trace.jsonl"]),
        (["runs", "list"], []),
        (["runs", "show"], ["0"]),
        (["runs", "diff"], ["0", "1"]),
        (["runs", "trend"], ["search.epoch_ms"]),
        (["runs", "gc"], []),
    ]

    @pytest.mark.parametrize("command,positionals", CASES,
                             ids=[" ".join(c) for c, _ in CASES])
    def test_scale_accepted_before_and_after(self, command, positionals):
        before = build_parser().parse_args(
            ["--scale", "smoke", *command, *positionals]
        )
        after = build_parser().parse_args(
            [*command, *positionals, "--scale", "smoke"]
        )
        assert before.scale == "smoke"
        assert after.scale == "smoke"

    @pytest.mark.parametrize("command,positionals", CASES,
                             ids=[" ".join(c) for c, _ in CASES])
    def test_seed_accepted_before_and_after(self, command, positionals):
        before = build_parser().parse_args(
            ["--seed", "9", *command, *positionals]
        )
        after = build_parser().parse_args(
            [*command, *positionals, "--seed", "9"]
        )
        assert before.seed == 9
        assert after.seed == 9

    def test_trailing_flag_wins_over_leading(self):
        args = build_parser().parse_args(
            ["--seed", "1", "stats", "--seed", "2"]
        )
        assert args.seed == 2

    def test_absent_trailing_flag_keeps_leading_value(self):
        args = build_parser().parse_args(["--scale", "full", "stats"])
        assert args.scale == "full"


class TestReportCommand:
    def _record(self, path, seed=0):
        import numpy as np

        from repro.core.search import SaneSearcher, SearchConfig
        from repro.core.search_space import SearchSpace
        from repro.obs import record_events

        space = SearchSpace(
            num_layers=2, node_ops=("gcn", "sage-mean"),
            layer_ops=("concat", "max"),
        )
        config = SearchConfig(epochs=3, hidden_dim=8, dropout=0.1)
        graph = _tiny_graph_for_cli()
        with record_events(path, label="cli-test", spans=True):
            SaneSearcher(space, graph, config, seed=seed).search()

    def test_report_requires_a_view(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report"])

    def test_report_run_renders_dashboard(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        self._record(events)
        assert main(["report", "run", str(events)]) == 0
        out = capsys.readouterr().out
        assert "== Search telemetry: cli-test ==" in out
        assert "per-edge entropy (nats):" in out

    def test_report_run_missing_file_exits_2(self, tmp_path, capsys):
        code = main(["report", "run", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_report_diff_renders_comparison(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self._record(a, seed=0)
        self._record(b, seed=1)
        assert main(["report", "diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "== Run diff:" in out
        assert "convergence epoch" in out

    def test_report_bench_ok_against_committed_baselines(self, capsys):
        code = main(
            ["report", "bench", "--bench-dir", "benchmarks/baselines"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ok (0 gated metric(s))" in out

    def test_report_bench_degraded_file_exits_1(self, tmp_path, capsys):
        import json

        baseline = {
            "bench": "demo", "version": 1, "scale": "smoke", "spans": [],
            "metrics": {"gauges": {"final_score.cora": {"value": 0.8}}},
            "extra": {},
        }
        degraded = dict(baseline)
        degraded["metrics"] = {"gauges": {"final_score.cora": {"value": 0.5}}}
        base_dir = tmp_path / "baselines"
        base_dir.mkdir()
        (base_dir / "BENCH_demo.json").write_text(json.dumps(baseline))
        fresh = tmp_path / "BENCH_demo.json"
        fresh.write_text(json.dumps(degraded))
        code = main(
            ["report", "bench", str(fresh), "--baselines", str(base_dir)]
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_report_bench_default_floor_forgives_sub_ms_tail(
        self, tmp_path, capsys
    ):
        # The exact shape that flaked CI: a sub-millisecond stage
        # latency jittering +80% run-to-run. The default 1 ms floor
        # reports it ok; with the floor disabled the same payload
        # gates (p50, so the tail demotion is not what saves it).
        import json

        baseline = {
            "bench": "demo", "version": 1, "scale": "smoke", "spans": [],
            "metrics": {
                "gauges": {"serve.stage.resolve.p50_s": {"value": 3.37e-05}}
            },
            "extra": {},
        }
        noisy = dict(baseline)
        noisy["metrics"] = {
            "gauges": {"serve.stage.resolve.p50_s": {"value": 6.07e-05}}
        }
        base_dir = tmp_path / "baselines"
        base_dir.mkdir()
        (base_dir / "BENCH_demo.json").write_text(json.dumps(baseline))
        fresh = tmp_path / "BENCH_demo.json"
        fresh.write_text(json.dumps(noisy))
        argv = ["report", "bench", str(fresh), "--baselines", str(base_dir)]
        assert main(argv) == 0
        assert "ok (0 gated metric(s))" in capsys.readouterr().out
        assert main(argv + ["--abs-floor-ms", "0"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_report_bench_missing_fresh_file_exits_1(self, tmp_path, capsys):
        import json

        base_dir = tmp_path / "baselines"
        base_dir.mkdir()
        (base_dir / "BENCH_demo.json").write_text(
            json.dumps({"bench": "demo", "metrics": {}, "spans": []})
        )
        empty = tmp_path / "fresh"
        empty.mkdir()
        code = main(
            ["report", "bench", "--baselines", str(base_dir),
             "--bench-dir", str(empty)]
        )
        assert code == 1
        assert "fresh results missing" in capsys.readouterr().out

    def test_search_events_flag_writes_renderable_log(self, tmp_path, capsys):
        events = tmp_path / "ev.jsonl"
        code = main(
            ["--scale", "smoke", "search", "cora", "--layers", "2",
             "--events", str(events)]
        )
        assert code == 0
        assert str(events) in capsys.readouterr().out
        assert main(["report", "run", str(events)]) == 0
        assert "Search telemetry" in capsys.readouterr().out


def _tiny_graph_for_cli():
    from tests.conftest import _make_tiny_graph

    return _make_tiny_graph()


class TestServeObservability:
    @pytest.fixture(scope="class")
    def artifact(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("serve-cli") / "artifact.json"
        assert main([
            "--scale", "smoke", "export", "baseline", "gcn", "cora",
            "--out", str(path),
        ]) == 0
        return path

    def test_parser_accepts_observability_flags(self):
        args = build_parser().parse_args([
            "serve", "artifact.json", "--trace", "t.jsonl",
            "--deadline-ms", "5.0", "--export-port", "0",
            "--export-snapshots", "s.jsonl", "--export-interval", "0.1",
            "--export-linger", "2",
        ])
        assert args.trace == "t.jsonl"
        assert args.deadline_ms == 5.0
        assert args.export_port == 0
        assert args.export_snapshots == "s.jsonl"
        assert args.export_interval == 0.1
        assert args.export_linger == 2.0
        report = build_parser().parse_args(
            ["report", "serve", "trace.jsonl", "--top", "2"]
        )
        assert report.trace == "trace.jsonl" and report.top == 2

    def test_demo_serve_emits_trace_snapshots_and_exporter(
        self, artifact, tmp_path, capsys
    ):
        trace = tmp_path / "trace.jsonl"
        snapshots = tmp_path / "snapshots.jsonl"
        code = main([
            "serve", str(artifact),
            "--trace", str(trace),
            "--export-snapshots", str(snapshots),
            "--export-port", "0",
            "--deadline-ms", "0.0001",  # everything misses: SLO visible
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "exporter:  http://127.0.0.1:" in out
        assert "snapshots:" in out
        assert "trace:" in out
        assert "deadline:" in out  # the misses were reported

        from repro.obs import read_snapshots

        records = read_snapshots(snapshots)
        assert records[0]["type"] == "snapshot-meta"
        final = [r for r in records if r["type"] == "metrics-snapshot"][-1]
        assert final["data"]["counters"]["serve.deadline_exceeded"]["value"] > 0

        assert main(["report", "serve", str(trace), "--top", "1"]) == 0
        report = capsys.readouterr().out
        assert "Per-stage latency breakdown" in report
        assert "Queue-depth timeline" in report
        assert "== SLO ==" in report

    def test_report_serve_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["report", "serve", str(tmp_path / "nope.jsonl")]) == 2
        assert "error" in capsys.readouterr().err


class TestHealthCommand:
    def test_parser_accepts_check_numerics(self):
        args = build_parser().parse_args(
            ["search", "cora", "--check-numerics", "warn"]
        )
        assert args.check_numerics == "warn"
        assert build_parser().parse_args(["search", "cora"]).check_numerics == "off"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "cora", "--check-numerics", "loud"])

    def test_search_warn_mode_prints_tape_health(self, capsys):
        code = main(
            ["--scale", "smoke", "search", "cora", "--layers", "2",
             "--check-numerics", "warn"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "tape health:" in out
        assert "0 anomalies" in out

    def test_raise_mode_anomaly_exits_3_with_provenance(self, capsys, monkeypatch):
        from repro.obs.health import NumericsAnomaly, get_monitor

        def poisoned_run(*args, **kwargs):
            raise NumericsAnomaly(
                "NaN", "forward", "mul", edge="node/1", layer=1, epoch=4
            )

        monkeypatch.setattr("repro.cli.run_sane", poisoned_run)
        code = main(
            ["--scale", "smoke", "search", "cora", "--check-numerics", "raise"]
        )
        assert code == 3
        err = capsys.readouterr().err
        assert "numerics anomaly" in err
        assert "op='mul'" in err
        assert "edge='node/1'" in err
        assert "epoch=4" in err
        # The monitor is uninstalled even on the failure path.
        from repro.autograd.tensor import get_tape_hook

        assert get_monitor() is None
        assert get_tape_hook() is None


class TestMemoryCommand:
    def test_parser_accepts_memory_flags(self):
        args = build_parser().parse_args(["profile", "search", "--memory"])
        assert args.memory is True
        args = build_parser().parse_args(["report", "memory", "t.jsonl", "--top", "3"])
        assert args.view == "memory"
        assert args.trace == "t.jsonl"
        assert args.top == 3

    def test_profile_memory_then_report_memory(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        code = main(
            ["--scale", "smoke", "profile", "search", "--dataset", "cora",
             "--layers", "2", "--memory", "--trace", str(trace)]
        )
        assert code == 0
        assert "== Tape memory:" in capsys.readouterr().out
        assert main(["report", "memory", str(trace), "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "== Tape memory: peak live" in out
        assert "span paths by peak live bytes" in out

    def test_report_memory_without_record_exits_2(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(
            ["--scale", "smoke", "profile", "search", "--dataset", "cora",
             "--layers", "2", "--trace", str(trace)]
        ) == 0
        capsys.readouterr()
        assert main(["report", "memory", str(trace)]) == 2
        assert "no memory_stats record" in capsys.readouterr().err


class TestRunLedgerCLI:
    """Every entry point leaves a manifest; `repro runs` reads them back."""

    @pytest.fixture
    def history(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_HISTORY_DIR", str(tmp_path))
        return tmp_path

    def _ledger(self, history):
        from repro.obs.runs import RunLedger

        return RunLedger(history / "runs.jsonl")

    def test_search_records_manifest_with_epoch_metric(self, history, capsys):
        assert main(["--scale", "smoke", "search", "cora", "--layers", "2"]) == 0
        capsys.readouterr()
        manifests = self._ledger(history).read()
        assert [m.command for m in manifests] == ["search"]
        manifest = manifests[0]
        assert manifest.config["dataset"] == "cora"
        assert manifest.env["scale"] == "smoke"
        assert manifest.metrics["search.epoch_ms"] > 0
        assert manifest.metrics["search.test_score"] > 0
        assert "architecture" in manifest.outputs
        assert manifest.duration_s > 0

    def test_seeded_reruns_share_run_id_and_config_digest(self, history, capsys):
        argv = ["--scale", "smoke", "search", "cora", "--layers", "2"]
        assert main(argv) == 0
        assert main(argv) == 0
        capsys.readouterr()
        manifests = self._ledger(history).read()
        assert len(manifests) == 2
        assert manifests[0].run_id == manifests[1].run_id
        assert manifests[0].config_digest == manifests[1].config_digest

    def test_sweep_records_one_manifest_with_children(self, history, capsys):
        assert main(
            ["--scale", "smoke", "sweep", "cora", "--methods", "sane"]
        ) == 0
        capsys.readouterr()
        manifests = self._ledger(history).read()
        assert [m.command for m in manifests] == ["sweep"]
        sweep = manifests[0]
        assert sweep.outputs["digest"]
        assert [c["dataset"] for c in sweep.children] == ["cora"]
        assert [c["method"] for c in sweep.children] == ["sane"]
        # The shared pool's utilization gauges fold into the manifest.
        assert any(k.startswith("parallel.") for k in sweep.metrics)

    def test_runs_list_show_and_gc(self, history, capsys):
        assert main(["--scale", "smoke", "stats"]) == 0
        assert main(["--scale", "smoke", "baseline", "gcn", "cora"]) == 0
        capsys.readouterr()
        assert main(["runs", "list"]) == 0
        listing = capsys.readouterr().out
        assert "stats" in listing and "baseline" in listing
        assert main(["runs", "show", "-1"]) == 0
        shown = capsys.readouterr().out
        assert "baseline" in shown and "config digest:" in shown
        assert main(["runs", "diff", "0", "1"]) == 0
        assert "Run diff" in capsys.readouterr().out
        assert main(["runs", "gc", "--keep", "1"]) == 0
        capsys.readouterr()
        assert len(self._ledger(history).read()) == 1

    def test_runs_show_unknown_ref_exits_2(self, history, capsys):
        assert main(["runs", "show", "rdeadbeef"]) == 2
        assert "no run matching" in capsys.readouterr().err

    @pytest.mark.parametrize("backend", ["naive", "fused"])
    def test_export_serve_lineage_round_trip(
        self, history, tmp_path, capsys, monkeypatch, backend
    ):
        # The acceptance path: export embeds its run id into the
        # artifact (hash-covered), serve --bench records a lineage
        # block, and `runs show` resolves it back to the producer —
        # under both kernel backends.
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path / "bench"))
        artifact = tmp_path / "artifact.json"
        assert main([
            "--scale", "smoke", "--kernels", backend,
            "export", "baseline", "gcn", "cora", "--out", str(artifact),
        ]) == 0
        assert main([
            "--scale", "smoke", "--kernels", backend,
            "serve", str(artifact), "--bench", "--levels", "1",
            "--requests", "4", "--bench-name", "lineage_test",
        ]) == 0
        capsys.readouterr()
        manifests = self._ledger(history).read()
        by_command = {m.command: m for m in manifests}
        export, serve = by_command["export"], by_command["serve"]
        assert export.artifacts[0]["path"] == str(artifact)
        assert serve.lineage["producer_run_id"] == export.run_id
        assert serve.lineage["content_hash"] == export.artifacts[0]["content_hash"]
        assert serve.env["kernels"] == backend
        assert "serve.latency.p50_s" in serve.metrics
        assert main(["runs", "show", "-1"]) == 0
        shown = capsys.readouterr().out
        assert f"produced by {export.run_id}" in shown

    def test_export_artifact_payload_carries_provenance(
        self, history, tmp_path, capsys
    ):
        import json

        artifact = tmp_path / "artifact.json"
        assert main([
            "--scale", "smoke", "export", "baseline", "gcn", "cora",
            "--out", str(artifact),
        ]) == 0
        capsys.readouterr()
        payload = json.loads(artifact.read_text())
        manifest = self._ledger(history).read()[-1]
        assert payload["provenance"]["run_id"] == manifest.run_id
        assert payload["provenance"]["config_digest"] == manifest.config_digest
        # Provenance is hash-covered: round-trip still verifies.
        from repro.serve import load_artifact

        loaded = load_artifact(artifact)
        assert loaded.provenance["run_id"] == manifest.run_id

    def test_ledger_kill_switch_disables_recording(
        self, history, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_RUN_LEDGER", "off")
        assert main(["--scale", "smoke", "stats"]) == 0
        capsys.readouterr()
        assert self._ledger(history).read() == []


class TestLintCommand:
    def test_parser_accepts_paths_and_format(self):
        args = build_parser().parse_args(["lint", "src/repro", "--format", "json"])
        assert args.command == "lint"
        assert args.paths == ["src/repro"]
        assert args.format == "json"

    def test_default_target_is_the_package_and_it_is_clean(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_json_format_on_clean_tree(self, capsys):
        import json

        assert main(["lint", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 0
        assert payload["findings"] == []

    def test_error_findings_set_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import torch\n")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "forbidden-import" in out

    def test_warnings_do_not_fail(self, tmp_path, capsys):
        warn_only = tmp_path / "loop.py"
        warn_only.write_text(
            "def fit(model, batches):\n"
            "    for batch in batches:\n"
            "        model(batch).backward()\n"
        )
        assert main(["lint", str(warn_only)]) == 0
        assert "missing-zero-grad" in capsys.readouterr().out
