"""Hits@k and alignment evaluation."""

import numpy as np
import pytest

from repro.kg.metrics import evaluate_alignment, hits_at_k, pairwise_l1


class TestPairwiseL1:
    def test_hand_case(self):
        a = np.array([[0.0, 0.0], [1.0, 1.0]])
        b = np.array([[0.0, 1.0]])
        np.testing.assert_allclose(pairwise_l1(a, b), [[1.0], [1.0]])

    def test_zero_diagonal_for_identical(self):
        a = np.random.default_rng(0).normal(size=(4, 3))
        d = pairwise_l1(a, a)
        np.testing.assert_allclose(np.diag(d), 0.0)


class TestHitsAtK:
    def test_perfect_alignment(self):
        d = np.array([[0.0, 5.0], [5.0, 0.0]])
        hits = hits_at_k(d, (1, 2))
        assert hits[1] == 1.0
        assert hits[2] == 1.0

    def test_worst_alignment(self):
        d = np.array([[5.0, 0.0], [0.0, 5.0]])
        hits = hits_at_k(d, (1, 2))
        assert hits[1] == 0.0
        assert hits[2] == 1.0  # everything is within top-2 of 2

    def test_monotone_in_k(self):
        rng = np.random.default_rng(0)
        d = rng.random((20, 20))
        hits = hits_at_k(d, (1, 5, 10, 20))
        values = [hits[k] for k in (1, 5, 10, 20)]
        assert values == sorted(values)
        assert hits[20] == 1.0

    def test_requires_square(self):
        with pytest.raises(ValueError, match="square"):
            hits_at_k(np.zeros((2, 3)), (1,))

    def test_partial_case(self):
        # Row 0 gold at rank 1 (one closer), row 1 gold is the closest.
        d = np.array([[1.0, 0.5], [9.0, 0.0]])
        hits = hits_at_k(d, (1,))
        assert hits[1] == 0.5


class TestEvaluateAlignment:
    def test_both_directions(self):
        rng = np.random.default_rng(0)
        z = rng.normal(size=(10, 4))
        links = np.stack([np.arange(10), np.arange(10)], axis=1)
        result = evaluate_alignment(z, z.copy(), links, ks=(1, 5))
        assert result["zh->en"][1] == 1.0
        assert result["en->zh"][1] == 1.0

    def test_uses_link_indices(self):
        rng = np.random.default_rng(1)
        z1 = rng.normal(size=(20, 4))
        # kg2 embedding j = kg1 embedding (j - 3): gold links offset by 3.
        z2 = np.roll(z1, 3, axis=0)
        links = np.stack([np.arange(5), (np.arange(5) + 3) % 20], axis=1)
        result = evaluate_alignment(z1, z2, links, ks=(1,))
        assert result["zh->en"][1] == 1.0
