"""Differentiable search adapted to entity alignment."""

import numpy as np
import pytest

from repro.kg.data import generate_alignment_dataset
from repro.kg.search import AlignSearchConfig, AlignSupernet, search_alignment


@pytest.fixture(scope="module")
def dataset():
    return generate_alignment_dataset(seed=0, num_core=80, extra_1=10, extra_2=20)


FAST = AlignSearchConfig(
    epochs=3, num_layers=2, embedding_dim=12, node_ops=("gcn", "gat", "sage-mean")
)


class TestAlignSupernet:
    def test_parameter_groups_disjoint(self, dataset):
        net = AlignSupernet(dataset, FAST, np.random.default_rng(0))
        arch_ids = {id(p) for p in net.arch_parameters()}
        weight_ids = {id(p) for p in net.weight_parameters()}
        assert not arch_ids & weight_ids
        assert arch_ids | weight_ids == {id(p) for p in net.parameters()}

    def test_encode_shapes(self, dataset):
        net = AlignSupernet(dataset, FAST, np.random.default_rng(0))
        z1, z2 = net.encode()
        assert z1.shape == (dataset.kg1.num_entities, 12)
        assert z2.shape == (dataset.kg2.num_entities, 12)

    def test_derive_valid_ops(self, dataset):
        net = AlignSupernet(dataset, FAST, np.random.default_rng(0))
        ops_ = net.derive()
        assert len(ops_) == 2
        assert set(ops_) <= set(FAST.node_ops)

    def test_derive_follows_alpha(self, dataset):
        net = AlignSupernet(dataset, FAST, np.random.default_rng(0))
        net.alpha_node.data[:] = 0.0  # lint: disable=tape-mutation -- test pins alpha logits directly; no backward pending
        net.alpha_node.data[0, 1] = 3.0  # lint: disable=tape-mutation -- test pins alpha logits directly; no backward pending
        net.alpha_node.data[1, 2] = 3.0  # lint: disable=tape-mutation -- test pins alpha logits directly; no backward pending
        assert net.derive() == ("gat", "sage-mean")


class TestSearchAlignment:
    def test_runs_and_records_history(self, dataset):
        result = search_alignment(dataset, FAST, seed=0)
        assert len(result.node_aggregators) == 2
        assert len(result.history) == FAST.epochs
        assert result.search_time > 0

    def test_deterministic(self, dataset):
        a = search_alignment(dataset, FAST, seed=5)
        b = search_alignment(dataset, FAST, seed=5)
        assert a.node_aggregators == b.node_aggregators
