"""Hypothesis property tests for alignment metrics and encodings."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.kg.metrics import hits_at_k, pairwise_l1

finite = st.floats(-100, 100, allow_nan=False, allow_infinity=False)


def embedding_pairs():
    return st.integers(2, 12).flatmap(
        lambda n: st.tuples(
            arrays(np.float64, (n, 4), elements=finite),
            arrays(np.float64, (n, 4), elements=finite),
        )
    )


@given(embedding_pairs())
@settings(max_examples=30, deadline=None)
def test_pairwise_l1_nonnegative_and_symmetric_on_swap(pair):
    a, b = pair
    d = pairwise_l1(a, b)
    assert (d >= 0).all()
    np.testing.assert_allclose(d, pairwise_l1(b, a).T)


@given(embedding_pairs())
@settings(max_examples=30, deadline=None)
def test_hits_monotone_in_k(pair):
    a, b = pair
    d = pairwise_l1(a, b)
    n = d.shape[0]
    ks = (1, max(1, n // 2), n)
    hits = hits_at_k(d, ks)
    values = [hits[k] for k in ks]
    assert values == sorted(values)
    assert hits[n] == 1.0


@given(st.integers(2, 10))
@settings(max_examples=20, deadline=None)
def test_identical_embeddings_give_perfect_hits1(n):
    rng = np.random.default_rng(n)
    z = rng.normal(size=(n, 3))
    # Distinct rows (almost surely) → diagonal strictly smallest.
    d = pairwise_l1(z, z)
    assert hits_at_k(d, (1,))[1] == 1.0


@given(st.integers(2, 8), st.integers(0, 6))
@settings(max_examples=20, deadline=None)
def test_hits_invariant_to_common_permutation(n, seed):
    rng = np.random.default_rng(seed)
    z1 = rng.normal(size=(n, 4))
    z2 = z1 + 0.01 * rng.normal(size=(n, 4))
    d = pairwise_l1(z1, z2)
    perm = rng.permutation(n)
    d_perm = pairwise_l1(z1[perm], z2[perm])
    assert hits_at_k(d, (1,)) == hits_at_k(d_perm, (1,))
