"""Synthetic bilingual KG generation."""

import numpy as np
import pytest

from repro.kg.data import AlignmentDataset, KnowledgeGraph, generate_alignment_dataset


def small_dataset(seed=0, **overrides):
    defaults = dict(num_core=80, extra_1=10, extra_2=20, noise_triples=20)
    defaults.update(overrides)
    return generate_alignment_dataset(seed=seed, **defaults)


class TestKnowledgeGraph:
    def test_validates_triple_shape(self):
        with pytest.raises(ValueError, match=r"\(T, 3\)"):
            KnowledgeGraph(5, np.zeros((3, 2), dtype=np.int64))

    def test_validates_entity_range(self):
        with pytest.raises(ValueError, match="beyond"):
            KnowledgeGraph(2, np.array([[0, 0, 5]]))

    def test_as_graph_is_undirected_with_features(self):
        kg = KnowledgeGraph(3, np.array([[0, 0, 1], [1, 0, 2]]))
        graph = kg.as_graph()
        pairs = set(map(tuple, graph.edge_index.T))
        assert (1, 0) in pairs and (0, 1) in pairs
        assert graph.features.shape == (3, 1)

    def test_relation_count(self):
        kg = KnowledgeGraph(3, np.array([[0, 4, 1]]))
        assert kg.num_relations == 5


class TestGenerator:
    def test_deterministic(self):
        a, b = small_dataset(3), small_dataset(3)
        np.testing.assert_array_equal(a.kg1.triples, b.kg1.triples)
        np.testing.assert_array_equal(a.train_links, b.train_links)

    def test_split_fractions(self):
        ds = small_dataset()
        total = ds.num_links
        assert total == 80
        assert abs(len(ds.train_links) / total - 0.3) < 0.05
        assert abs(len(ds.val_links) / total - 0.1) < 0.05

    def test_links_are_disjoint(self):
        ds = small_dataset()
        seen = set()
        for block in (ds.train_links, ds.val_links, ds.test_links):
            for pair in map(tuple, block):
                assert pair not in seen
                seen.add(pair)

    def test_view_sizes(self):
        ds = small_dataset()
        assert ds.kg1.num_entities == 90
        assert ds.kg2.num_entities == 100

    def test_index_permutation_hides_identity(self):
        """Gold pairs must not simply be equal indices."""
        ds = small_dataset()
        pairs = np.concatenate([ds.train_links, ds.val_links, ds.test_links])
        assert (pairs[:, 0] != pairs[:, 1]).any()

    def test_keep_fraction_controls_overlap(self):
        dense = small_dataset(keep_1=0.95, keep_2=0.95)
        sparse = small_dataset(keep_1=0.4, keep_2=0.4)
        assert dense.kg1.num_triples > sparse.kg1.num_triples

    def test_statistics_structure(self):
        stats = small_dataset().statistics()
        assert set(stats) == {"kg1", "kg2", "links"}
        assert stats["links"]["train"] == len(small_dataset().train_links)

    def test_link_validation(self):
        ds = small_dataset()
        with pytest.raises(ValueError, match=r"\(n, 2\)"):
            AlignmentDataset(
                kg1=ds.kg1,
                kg2=ds.kg2,
                train_links=np.zeros((3, 3)),
                val_links=ds.val_links,
                test_links=ds.test_links,
            )
