"""Alignment models and training."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.kg.align import (
    AlignConfig,
    EmbeddingAligner,
    GNNAligner,
    l2_normalize,
    margin_ranking_loss,
    train_aligner,
)
from repro.kg.data import generate_alignment_dataset


@pytest.fixture(scope="module")
def dataset():
    return generate_alignment_dataset(seed=0, num_core=80, extra_1=10, extra_2=20)


FAST = AlignConfig(epochs=30, patience=30, embedding_dim=16, num_negatives=3)


class TestL2Normalize:
    def test_unit_rows(self):
        x = Tensor(np.random.default_rng(0).normal(size=(5, 3)))
        out = l2_normalize(x).data
        np.testing.assert_allclose(np.linalg.norm(out, axis=1), 1.0, atol=1e-9)

    def test_zero_row_safe(self):
        out = l2_normalize(Tensor(np.zeros((1, 3)))).data
        assert np.isfinite(out).all()


class TestMarginLoss:
    def test_nonnegative(self, dataset):
        rng = np.random.default_rng(0)
        z1 = Tensor(rng.normal(size=(dataset.kg1.num_entities, 8)))
        z2 = Tensor(rng.normal(size=(dataset.kg2.num_entities, 8)))
        loss = margin_ranking_loss(z1, z2, dataset.train_links, rng, 1.0, 2)
        assert loss.item() >= 0.0

    def test_zero_when_pairs_identical_and_negatives_far(self):
        rng = np.random.default_rng(0)
        base = np.zeros((4, 2))
        base[2:] = 100.0  # potential negatives are far away
        z1 = Tensor(base)
        z2 = Tensor(base.copy())
        links = np.array([[0, 0], [1, 1]])
        loss = margin_ranking_loss(z1, z2, links, rng, 0.5, 1)
        # pos distance 0; negatives either the pair itself (hinge=margin)
        # or far (hinge=0) — loss is bounded by the margin.
        assert loss.item() <= 0.5 + 1e-9


class TestEmbeddingAligner:
    def test_seed_pairs_share_rows(self, dataset, rng):
        model = EmbeddingAligner(dataset, 16, rng)
        z1, z2 = model.encode()
        i, j = dataset.train_links[0]
        np.testing.assert_allclose(z1.data[i], z2.data[j])

    def test_non_seed_entities_have_own_rows(self, dataset, rng):
        model = EmbeddingAligner(dataset, 16, rng)
        z1, z2 = model.encode()
        i, j = dataset.test_links[0]
        assert not np.allclose(z1.data[i], z2.data[j])

    def test_structure_loss_differentiable(self, dataset, rng):
        model = EmbeddingAligner(dataset, 16, rng)
        loss = model.structure_loss(np.random.default_rng(0))
        loss.backward()
        assert model.entities.grad is not None
        assert model.relations.grad is not None


class TestGNNAligner:
    def test_encode_shapes_and_norms(self, dataset, rng):
        model = GNNAligner(dataset, ["gcn", "gcn"], 16, rng)
        z1, z2 = model.encode()
        assert z1.shape == (dataset.kg1.num_entities, 16)
        assert z2.shape == (dataset.kg2.num_entities, 16)
        np.testing.assert_allclose(np.linalg.norm(z1.data, axis=1), 1.0, atol=1e-8)

    def test_requires_layers(self, dataset, rng):
        with pytest.raises(ValueError, match="encoder layer"):
            GNNAligner(dataset, [], 16, rng)

    def test_shared_weights_across_views(self, dataset, rng):
        model = GNNAligner(dataset, ["gcn"], 16, rng)
        # One layer list serves both KGs: only one set of layer params.
        layer_params = [
            name for name, __ in model.named_parameters() if name.startswith("layers")
        ]
        assert len(layer_params) == 2  # gcn weight + bias


class TestTrainAligner:
    def test_training_improves_over_init(self, dataset):
        model = GNNAligner(dataset, ["gcn", "gcn"], 16, np.random.default_rng(0))
        result = train_aligner(model, dataset, FAST, seed=0)
        assert result.val_hits1 > 0.0
        assert result.test_hits["zh->en"][50] > 0.2

    def test_result_structure(self, dataset):
        model = EmbeddingAligner(dataset, 16, np.random.default_rng(0))
        result = train_aligner(model, dataset, FAST, seed=0)
        assert set(result.test_hits) == {"zh->en", "en->zh"}
        assert set(result.test_hits["zh->en"]) == {1, 10, 50}
        assert result.train_time > 0
