"""Bench regression gate: direction inference, classification, rendering."""

import json

import pytest

from repro.obs.bench_gate import (
    compare_bench,
    is_seconds,
    is_tail_percentile,
    is_wall_clock,
    load_bench,
    metric_direction,
    render_bench_diff,
    scalar_metrics,
    span_totals,
)


def _payload(gauges: dict, spans=(), scale="smoke") -> dict:
    return {
        "bench": "demo",
        "version": 1,
        "scale": scale,
        "spans": list(spans),
        "metrics": {
            "gauges": {k: {"value": v} for k, v in gauges.items()},
            "counters": {},
            "histograms": {},
        },
        "extra": {},
    }


class TestMetricDirection:
    @pytest.mark.parametrize(
        "name",
        ["search_time_s.sane.cora", "train_loss", "latency_ms", "peak.memory"],
    )
    def test_lower_is_better(self, name):
        assert metric_direction(name) == -1

    @pytest.mark.parametrize(
        "name",
        ["speedup.cora", "final_score.sane.ppi", "val_accuracy", "micro_f1"],
    )
    def test_higher_is_better(self, name):
        assert metric_direction(name) == 1

    def test_unknown_token_never_gates(self):
        assert metric_direction("candidates.total") == 0
        deltas = compare_bench(
            _payload({"candidates.total": 10.0}),
            _payload({"candidates.total": 2.0}),
        )
        assert deltas[0].status == "info"
        assert not deltas[0].gates


class TestCompareBench:
    def test_within_tolerance_is_ok(self):
        deltas = compare_bench(
            _payload({"final_score.cora": 0.80}),
            _payload({"final_score.cora": 0.78}),  # -2.5% < 10%
        )
        assert deltas[0].status == "ok"

    def test_degraded_score_beyond_tolerance_gates(self):
        deltas = compare_bench(
            _payload({"final_score.cora": 0.80}),
            _payload({"final_score.cora": 0.60}),  # -25%
        )
        assert deltas[0].status == "regression"
        assert deltas[0].gates

    def test_improvement_is_flagged_but_never_gates(self):
        deltas = compare_bench(
            _payload({"search_time_s.cora": 10.0}),
            _payload({"search_time_s.cora": 4.0}),
        )
        assert deltas[0].status == "improved"
        assert not deltas[0].gates

    def test_time_metrics_use_the_looser_tolerance(self):
        base = _payload({"search_time_s.cora": 10.0})
        ok = compare_bench(base, _payload({"search_time_s.cora": 13.0}))  # +30%
        assert ok[0].status == "ok"
        bad = compare_bench(base, _payload({"search_time_s.cora": 16.0}))  # +60%
        assert bad[0].status == "regression"

    def test_speedup_ratio_uses_the_wall_clock_tolerance(self):
        # A speedup gauge is higher-is-better but is a ratio of two
        # wall-clock measurements — a 20% run-to-run wobble must not gate.
        assert is_wall_clock("speedup.pubmed")
        base = _payload({"speedup.pubmed": 2.5})
        ok = compare_bench(base, _payload({"speedup.pubmed": 2.0}))  # -20%
        assert ok[0].status == "ok"
        assert not ok[0].gates
        bad = compare_bench(base, _payload({"speedup.pubmed": 1.0}))  # -60%
        assert bad[0].status == "regression"

    def test_missing_metric_gates_and_new_metric_does_not(self):
        deltas = compare_bench(
            _payload({"final_score.a": 0.5}),
            _payload({"final_score.b": 0.5}),
        )
        by_name = {d.name: d for d in deltas}
        assert by_name["final_score.a"].status == "missing"
        assert by_name["final_score.a"].gates
        assert by_name["final_score.b"].status == "new"
        assert not by_name["final_score.b"].gates

    def test_self_compare_is_entirely_ok(self):
        payload = _payload({"final_score.cora": 0.8, "search_time_s.cora": 2.0})
        deltas = compare_bench(payload, payload)
        assert all(d.status == "ok" for d in deltas)

    def test_sub_floor_duration_jitter_never_gates(self):
        # A 30 µs tail doubling is timer noise, not a regression: with
        # both sides under the floor the relative tolerance is moot.
        base = _payload({"serve.stage.resolve.p50_s": 3.3e-05})
        noisy = _payload({"serve.stage.resolve.p50_s": 6.1e-05})  # +85%
        deltas = compare_bench(base, noisy, abs_floor_s=1e-3)
        assert deltas[0].status == "ok"
        assert not deltas[0].gates
        # The same delta without a floor gates — the floor is the fix.
        assert compare_bench(base, noisy)[0].status == "regression"

    def test_sub_floor_improvement_is_noise_too(self):
        base = _payload({"serve.stage.slice.p99_s": 6.0e-05})
        fast = _payload({"serve.stage.slice.p99_s": 1.0e-05})
        deltas = compare_bench(base, fast, abs_floor_s=1e-3)
        assert deltas[0].status == "ok"

    def test_climbing_past_the_floor_still_gates(self):
        # 33 µs -> 5 ms is a real regression; only *both*-below-floor
        # deltas are forgiven.
        base = _payload({"serve.stage.resolve.p50_s": 3.3e-05})
        slow = _payload({"serve.stage.resolve.p50_s": 5.0e-03})
        deltas = compare_bench(base, slow, abs_floor_s=1e-3)
        assert deltas[0].status == "regression"
        assert deltas[0].gates

    def test_floor_only_touches_seconds_metrics(self):
        # A score of 0.0008 is not a duration: the floor must not
        # forgive a 50% accuracy collapse just because it is small.
        assert not is_seconds("final_score.cora")
        assert not is_seconds("kernel.index_add.bytes_moved")
        assert is_seconds("serve.stage.forward.p99_s")
        assert is_seconds("search_time_s.sane.cora")
        base = _payload({"final_score.cora": 8e-04})
        bad = _payload({"final_score.cora": 4e-04})
        deltas = compare_bench(base, bad, abs_floor_s=1e-3)
        assert deltas[0].status == "regression"

    def test_tail_percentiles_report_noisy_instead_of_gating(self):
        # A p99 over a few hundred samples is max-like: one co-tenant
        # scheduler burst moves it 4x while the median sits still. It
        # must not hard-gate by default — but the move stays visible.
        assert is_tail_percentile("serve.c16.p99_latency_s")
        assert is_tail_percentile("serve.latency.p99_s")
        assert not is_tail_percentile("serve.c16.p50_latency_s")
        base = _payload({"serve.latency.p99_s": 2.2e-03})
        burst = _payload({"serve.latency.p99_s": 5.8e-03})  # +164%
        deltas = compare_bench(base, burst)
        assert deltas[0].status == "noisy"
        assert not deltas[0].gates
        # Opting in restores the hard gate.
        gated = compare_bench(base, burst, gate_tails=True)
        assert gated[0].status == "regression"
        assert gated[0].gates

    def test_tail_within_tolerance_is_plain_ok(self):
        base = _payload({"serve.latency.p99_s": 2.2e-03})
        near = _payload({"serve.latency.p99_s": 2.4e-03})  # +9%
        assert compare_bench(base, near)[0].status == "ok"

    def test_vanished_tail_metric_still_gates(self):
        # "noisy" forgives magnitude, not absence: a payload that stops
        # emitting its p99 gauge is a shape regression.
        deltas = compare_bench(
            _payload({"serve.latency.p99_s": 2.2e-03}), _payload({})
        )
        assert deltas[0].status == "missing"
        assert deltas[0].gates

    def test_median_regressions_still_hard_gate(self):
        base = _payload({"serve.c1.p50_latency_s": 2.0e-03})
        slow = _payload({"serve.c1.p50_latency_s": 4.0e-03})  # +100%
        deltas = compare_bench(base, slow, abs_floor_s=1e-3)
        assert deltas[0].status == "regression"
        assert deltas[0].gates

    def test_spans_only_gate_when_asked(self):
        spans_base = [{"path": "search/epoch", "total_s": 1.0}]
        spans_slow = [{"path": "search/epoch", "total_s": 3.0}]
        base = _payload({}, spans=spans_base)
        slow = _payload({}, spans=spans_slow)
        assert compare_bench(base, slow) == []
        gated = compare_bench(base, slow, gate_spans=True)
        assert gated[0].name == "span:search/epoch"
        assert gated[0].status == "regression"


class TestLoadersAndRender:
    def test_load_bench_rejects_non_bench_json(self, tmp_path):
        path = tmp_path / "nope.json"
        path.write_text(json.dumps({"foo": 1}))
        with pytest.raises(ValueError):
            load_bench(path)

    def test_scalar_metrics_flatten_all_kinds(self):
        payload = _payload({"g": 1.0})
        payload["metrics"]["counters"]["c"] = {"value": 2.0}
        payload["metrics"]["histograms"]["h"] = {"mean": 3.0, "count": 4}
        assert scalar_metrics(payload) == {"g": 1.0, "c": 2.0, "h": 3.0}

    def test_span_totals(self):
        payload = _payload({}, spans=[{"path": "a/b", "total_s": 1.5}])
        assert span_totals(payload) == {"a/b": 1.5}

    def test_render_verdict_and_notes(self):
        deltas = compare_bench(
            _payload({"final_score.cora": 0.8}),
            _payload({"final_score.cora": 0.6}),
        )
        text = render_bench_diff("BENCH_demo.json", deltas, notes=["scale mismatch"])
        assert "== Bench BENCH_demo.json: REGRESSION (1 gated metric(s)) ==" in text
        assert "note: scale mismatch" in text
        assert "regression" in text

    def test_render_ok_verdict(self):
        payload = _payload({"final_score.cora": 0.8})
        text = render_bench_diff("b", compare_bench(payload, payload))
        assert "== Bench b: ok (0 gated metric(s)) ==" in text
