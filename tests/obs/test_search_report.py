"""Dashboard rendering (``repro report run``/``diff``) — tier-1 lockdown.

The tentpole guarantee under test: a smoke-scale search recorded through
the event log and replayed through the dashboard renders *byte-identical*
text across two seeded runs (deterministic formatting, fake clock).
"""

import numpy as np

from repro.core.search import SaneSearcher, SearchConfig
from repro.core.search_space import SearchSpace
from repro.obs import health, record_events, render_diff, render_run
from repro.obs.search_report import (
    _sparkline,
    load_run_records,
    split_searches,
)

SMALL_SPACE = SearchSpace(
    num_layers=2, node_ops=("gcn", "sage-mean"), layer_ops=("concat", "max")
)
# alpha_lr boosted well past the paper's 3e-4 so a 6-epoch smoke search
# visibly sharpens the distribution and flips the argmax genotype.
SHARP = SearchConfig(epochs=6, hidden_dim=8, dropout=0.1, alpha_lr=0.05)


class FakeClock:
    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


def _record_search(path, seed: int, tiny_graph, label="search:test") -> None:
    with record_events(path, label=label, clock=FakeClock(step=0.25)):
        SaneSearcher(SMALL_SPACE, tiny_graph, SHARP, seed=seed).search()


class TestSparkline:
    def test_flat_series_renders_lowest_cell(self):
        assert _sparkline([1.0, 1.0, 1.0]) == "▁▁▁"

    def test_monotone_series_spans_the_ramp(self):
        line = _sparkline([0.0, 1.0, 2.0, 3.0])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_long_series_is_downsampled(self):
        assert len(_sparkline(list(range(500)))) == 32

    def test_empty_series(self):
        assert _sparkline([]) == ""


class TestRenderRun:
    def test_dashboard_sections(self, tiny_graph, tmp_path):
        path = tmp_path / "run.jsonl"
        _record_search(path, seed=0, tiny_graph=tiny_graph)
        text = render_run(path)
        assert "== Search telemetry: search:test ==" in text
        assert "per-edge entropy (nats):" in text
        assert "node/0" in text and "layer/0" in text
        assert "genotype flip" in text  # timeline or the no-flips line
        assert "curves:" in text
        assert "val_score" in text and "|g_alpha|" in text
        assert "final genotype:" in text

    def test_dashboard_is_byte_identical_across_seeded_runs(
        self, tiny_graph, tmp_path
    ):
        path_a = tmp_path / "a.jsonl"
        path_b = tmp_path / "b.jsonl"
        _record_search(path_a, seed=11, tiny_graph=tiny_graph)
        _record_search(path_b, seed=11, tiny_graph=tiny_graph)
        assert path_a.read_bytes() == path_b.read_bytes()
        assert render_run(path_a).encode() == render_run(path_b).encode()

    def test_entropy_sharpens_under_boosted_alpha_lr(self, tiny_graph, tmp_path):
        path = tmp_path / "run.jsonl"
        _record_search(path, seed=0, tiny_graph=tiny_graph)
        from repro.obs.search_report import load_run_records

        events, _ = load_run_records(path)
        run = split_searches(events)[0]
        drops = [
            series[0] - series[-1]
            for series in run.entropy.values()
        ]
        # The distribution sharpens overall; individual edges may wobble
        # by a fraction of a millinat on a 6-epoch smoke run.
        assert sum(drops) > 0.05, drops
        assert sum(1 for drop in drops if drop > 0) >= len(drops) - 1, drops

    def test_run_without_search_events(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        with record_events(path, label="none") as recorder:
            recorder.emit("train_start", mode="transductive", epochs=1)
        text = render_run(path)
        assert "(no search_start events recorded)" in text


class TestEntropyCollapseSection:
    def _run_with_entropy(self, **entropy):
        from repro.obs.search_report import SearchRun

        return SearchRun(entropy=entropy)

    def test_collapse_index_requires_saturation_to_the_end(self):
        from repro.obs.search_report import _collapse_index

        # Dips below threshold then recovers: never collapsed.
        assert _collapse_index([1.0, 0.01, 0.9, 0.8]) is None
        # Saturates at snapshot 1 and stays: collapsed there.
        assert _collapse_index([1.0, 0.01, 0.02, 0.0]) == 1
        assert _collapse_index([1.0]) is None
        # Soft mixture throughout: no collapse.
        assert _collapse_index([1.0, 0.9, 0.8, 0.7]) is None

    def test_early_collapse_flags_darts_failure_mode(self):
        from repro.obs.search_report import _entropy_collapse_lines

        run = self._run_with_entropy(
            **{
                "node/0": [1.0, 0.01, 0.0, 0.0, 0.0],  # collapses at 25%
                "node/1": [1.0, 0.9, 0.8, 0.7, 0.6],   # stays soft
            }
        )
        lines = _entropy_collapse_lines(run)
        assert "1/2 edge(s) saturated before 50%" in lines[0]
        assert "DARTS-style premature argmax" in lines[0]
        body = "\n".join(lines)
        assert "node/0" in body and "node/1" not in body

    def test_late_collapse_is_sane_like(self):
        from repro.obs.search_report import _entropy_collapse_lines

        run = self._run_with_entropy(
            **{"node/0": [1.0, 0.9, 0.8, 0.02, 0.0]}  # collapses at 75%
        )
        lines = _entropy_collapse_lines(run)
        assert lines == [
            "entropy collapse: none before 50% of the search (mixtures "
            "stayed soft — SANE-like dynamics, not the DARTS failure mode)"
        ]

    def test_no_tracked_edges_renders_nothing(self):
        from repro.obs.search_report import _entropy_collapse_lines

        assert _entropy_collapse_lines(self._run_with_entropy()) == []

    def test_recorded_search_renders_the_section(self, tiny_graph, tmp_path):
        events = tmp_path / "events.jsonl"
        _record_search(events, seed=0, tiny_graph=tiny_graph)
        out = render_run(events)
        assert "entropy collapse:" in out


class TestPoolUtilizationSection:
    def _write_events(self, path, waves):
        from repro.obs import events as events_mod

        recorder = events_mod.EventRecorder(path, label="pool")
        recorder.emit("search_start", meta={})
        for wave in waves:
            recorder.emit("pool_utilization", **wave)
        recorder.emit("search_end")
        recorder.close()

    def test_waves_aggregate_into_one_table(self, tmp_path):
        events = tmp_path / "events.jsonl"
        self._write_events(
            events,
            [
                {
                    "workers": 2,
                    "utilization": 0.5,
                    "per_worker": {
                        "0": {"busy_frac": 0.5, "tasks": 2},
                        "1": {"busy_frac": 0.5, "tasks": 1},
                    },
                },
                {
                    "workers": 2,
                    "utilization": 1.0,
                    "per_worker": {
                        "0": {"busy_frac": 1.0, "tasks": 3},
                    },
                },
            ],
        )
        out = render_run(events)
        assert "worker pool utilization: 2 wave(s), mean utilization 0.75" in out
        assert "worker-0" in out and "worker-1" in out
        # tasks summed across waves; busy_frac averaged over appearances.
        lines = [l for l in out.splitlines() if "worker-0" in l]
        assert "5" in lines[0] and "0.75" in lines[0]

    def test_no_pool_events_no_section(self, tiny_graph, tmp_path):
        events = tmp_path / "events.jsonl"
        _record_search(events, seed=0, tiny_graph=tiny_graph)
        # The in-process searcher itself runs no pool here.
        assert "worker pool utilization" not in render_run(events)


class TestGradHealthSection:
    def _record_monitored(self, path, tiny_graph, dead_op_eps=1e-6):
        with record_events(path, label="search:test", clock=FakeClock(0.25)):
            with health.check_numerics(mode="warn", dead_op_eps=dead_op_eps):
                SaneSearcher(SMALL_SPACE, tiny_graph, SHARP, seed=0).search()

    def test_monitored_run_renders_gradient_health(self, tiny_graph, tmp_path):
        path = tmp_path / "run.jsonl"
        self._record_monitored(path, tiny_graph)
        text = render_run(path)
        assert "gradient health (|g_alpha|/|g_w| trend" in text
        assert "|g_alpha|" in text and "alpha_step" in text
        # One grad_health row per epoch of the smoke search.
        events, _ = load_run_records(path)
        runs = split_searches(events)
        assert sorted(runs[0].grad_health) == list(range(SHARP.epochs))

    def test_dead_op_sightings_render_when_eps_is_hot(
        self, tiny_graph, tmp_path
    ):
        # An absurd eps declares most mixture weights "dead" so the
        # sightings table is guaranteed to populate at smoke scale.
        path = tmp_path / "run.jsonl"
        self._record_monitored(path, tiny_graph, dead_op_eps=0.5)
        text = render_run(path)
        assert "dead-op sightings:" in text
        events, _ = load_run_records(path)
        runs = split_searches(events)
        assert runs[0].dead_ops
        sighting = runs[0].dead_ops[0]
        assert {"epoch", "edge", "layer", "op", "weight"} <= set(sighting)

    def test_unmonitored_run_has_no_section(self, tiny_graph, tmp_path):
        # Old traces (and monitor-off runs) must render exactly as
        # before the section existed.
        path = tmp_path / "run.jsonl"
        _record_search(path, seed=0, tiny_graph=tiny_graph)
        text = render_run(path)
        assert "gradient health" not in text
        assert "dead-op sightings" not in text


class TestRenderDiff:
    def test_identical_runs_diff_clean(self, tiny_graph, tmp_path):
        path_a = tmp_path / "a.jsonl"
        path_b = tmp_path / "b.jsonl"
        _record_search(path_a, seed=5, tiny_graph=tiny_graph)
        _record_search(path_b, seed=5, tiny_graph=tiny_graph)
        text = render_diff(path_a, path_b)
        assert "final genotype: identical" in text
        assert "convergence epoch" in text

    def test_different_seeds_report_quantities(self, tiny_graph, tmp_path):
        path_a = tmp_path / "a.jsonl"
        path_b = tmp_path / "b.jsonl"
        _record_search(path_a, seed=0, tiny_graph=tiny_graph, label="run-a")
        _record_search(path_b, seed=1, tiny_graph=tiny_graph, label="run-b")
        text = render_diff(path_a, path_b)
        assert "== Run diff: run-a vs run-b ==" in text
        assert "genotype flips" in text
        assert "val_score curve" in text

    def test_same_labels_are_disambiguated(self, tiny_graph, tmp_path):
        path_a = tmp_path / "a.jsonl"
        path_b = tmp_path / "b.jsonl"
        _record_search(path_a, seed=0, tiny_graph=tiny_graph)
        _record_search(path_b, seed=1, tiny_graph=tiny_graph)
        text = render_diff(path_a, path_b)
        assert "search:test (a)" in text
        assert "search:test (b)" in text

    def test_memory_deltas_when_memory_stats_present(self, tiny_graph, tmp_path):
        from repro.obs.session import ProfileSession

        paths = []
        for index, name in enumerate(("a.jsonl", "b.jsonl")):
            path = tmp_path / name
            with ProfileSession(
                trace_path=path, label=f"run-{index}", events=True, memory=True
            ):
                SaneSearcher(SMALL_SPACE, tiny_graph, SHARP, seed=index).search()
            paths.append(path)
        text = render_diff(*paths)
        assert "tape memory deltas (run-1 - run-0):" in text
        assert "overall peak live:" in text
        assert "Δret" in text and "Δpeak" in text

    def test_no_memory_section_without_memory_stats(self, tiny_graph, tmp_path):
        path_a = tmp_path / "a.jsonl"
        path_b = tmp_path / "b.jsonl"
        _record_search(path_a, seed=0, tiny_graph=tiny_graph)
        _record_search(path_b, seed=1, tiny_graph=tiny_graph)
        assert "tape memory deltas" not in render_diff(path_a, path_b)

    def test_hotspot_deltas_when_spans_interleaved(self, tiny_graph, tmp_path):
        paths = []
        for index, name in enumerate(("a.jsonl", "b.jsonl")):
            path = tmp_path / name
            with record_events(path, label=f"run-{index}", spans=True):
                SaneSearcher(SMALL_SPACE, tiny_graph, SHARP, seed=index).search()
            paths.append(path)
        text = render_diff(*paths)
        assert "hotspot deltas" in text
        assert "search/epoch" in text
