"""Tape memory accounting: live set, retained buffers, report rendering."""

import gc

import numpy as np
import pytest

from repro.autograd import Tensor, ops
from repro.autograd.tensor import get_tape_hook
from repro.obs import ProfileSession
from repro.obs.memory import (
    MemoryTracker,
    render_memory_report,
    render_memory_report_file,
    track_memory,
)
from repro.obs.sinks import read_trace


def _retaining_op(x: Tensor, extra: np.ndarray) -> Tensor:
    """Pass-through op whose VJP closure retains ``extra``."""

    def retain_backward(grad):
        return (np.asarray(grad) + 0.0 * extra.sum(),)

    return Tensor._from_op(x.data + 0.0, (x,), retain_backward)


class TestLiveAccounting:
    def test_live_bytes_rise_and_release(self):
        with track_memory() as mem:
            x = Tensor(np.ones((8, 8)), requires_grad=True)
            y = x * x
            z = ops.sum(y)
            assert mem.current_live > 0
            assert mem.peak_live >= mem.current_live
            del y, z
            gc.collect()
            assert mem.current_live == 0
        assert get_tape_hook() is None
        # Cumulative stats survive uninstall for post-run reporting.
        assert mem.peak_live > 0
        assert mem.per_op  # op table populated

    def test_no_grad_entries_are_transient(self):
        from repro.autograd.tensor import no_grad

        with track_memory() as mem:
            x = Tensor(np.ones((16, 16)), requires_grad=True)
            with no_grad():
                _ = x * x
            gc.collect()
            # The closure was dropped before the Tensor was built, so the
            # entry was counted and immediately released.
            assert mem.current_live == 0
            assert mem.peak_live > 0

    def test_output_and_input_bytes_attributed_per_op(self):
        with track_memory() as mem:
            x = Tensor(np.ones((4, 4)), requires_grad=True)  # 128 bytes
            y = x * x
        stats = mem.per_op["mul"]
        assert stats.entries == 1
        assert stats.output_bytes == y.data.nbytes == 128
        assert stats.input_bytes == 2 * 128  # both parents are x

    def test_retained_closure_buffers_counted(self):
        extra = np.ones((32, 32))  # 8192 bytes, captured by the VJP only
        with track_memory() as mem:
            x = Tensor(np.ones((2, 2)), requires_grad=True)
            y = _retaining_op(x, extra)
        stats = mem.per_op["_retaining_op"]
        assert stats.retained_bytes == extra.nbytes
        # output + retained both count toward the live set
        assert mem.peak_live >= y.data.nbytes + extra.nbytes

    def test_epoch_peaks_follow_span_stack(self):
        from repro import obs

        with track_memory() as mem:
            for epoch in range(2):
                with obs.span("epoch", index=epoch):
                    x = Tensor(np.ones((8, 8)), requires_grad=True)
                    _ = x * x
        stats = mem.stats()
        assert set(stats["epoch_peaks"]) == {"0", "1"}
        assert all(peak > 0 for peak in stats["epoch_peaks"].values())

    def test_site_table_keys_on_path_and_op(self):
        from repro import obs

        with track_memory() as mem:
            with obs.span("forward"):
                x = Tensor(np.ones(4), requires_grad=True)
                _ = x * x
        sites = mem.stats()["sites"]
        assert {"path": "forward", "op": "mul"}.items() <= sites[0].items()


class TestTrackerLifecycle:
    def test_double_install_is_idempotent(self):
        tracker = MemoryTracker()
        tracker.install()
        tracker.install()
        tracker.uninstall()
        assert get_tape_hook() is None

    def test_composes_with_profiler_session(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with ProfileSession(trace_path=path, memory=True) as session:
            x = Tensor(np.ones((8, 8)), requires_grad=True)
            ops.sum(x * x).backward()
        assert session.tracker is not None
        assert session.memory_stats()["peak_live_bytes"] > 0
        assert "== Tape memory:" in session.report()
        records = read_trace(path)
        memory_records = [r for r in records if r["type"] == "memory_stats"]
        assert len(memory_records) == 1
        assert memory_records[0]["data"]["peak_live_bytes"] > 0

    def test_session_without_memory_records_no_stats(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with ProfileSession(trace_path=path) as session:
            x = Tensor(np.ones(4), requires_grad=True)
            _ = x * x
        assert session.tracker is None
        assert all(r["type"] != "memory_stats" for r in read_trace(path))


class TestRendering:
    def _stats(self, epochs=3):
        return {
            "peak_live_bytes": 4096,
            "current_live_bytes": 0,
            "epoch_peaks": {str(e): 1024 * (e + 1) for e in range(epochs)},
            "per_op": {},
            "per_path": {
                "search/epoch/forward": {
                    "entries": 12,
                    "output_bytes": 2048,
                    "retained_bytes": 512,
                    "peak_live_bytes": 4096,
                }
            },
            "sites": [
                {
                    "path": "search/epoch/forward",
                    "op": "segment_attention_sum",
                    "entries": 4,
                    "retained_bytes": 512,
                    "peak_live_bytes": 1024,
                },
                {
                    "path": "search/epoch/forward",
                    "op": "matmul",
                    "entries": 8,
                    "retained_bytes": 0,
                    "peak_live_bytes": 2048,
                },
            ],
        }

    def test_all_sections_render(self):
        report = render_memory_report(self._stats(), top=10)
        assert "== Tape memory: peak live 4.0KB ==" in report
        assert "span paths by peak live bytes" in report
        assert "retained-buffer sites" in report
        assert "Peak tape memory per epoch" in report
        # Zero-retained sites are excluded from the retained table.
        assert "matmul" not in report.split("retained-buffer sites")[1].split("--")[0]

    def test_long_runs_cap_the_epoch_table(self):
        report = render_memory_report(self._stats(epochs=40), top=5)
        assert "(top 5 of 40)" in report
        # The heaviest epochs are kept, in epoch order.
        lines = report.split("Peak tape memory per epoch")[1].splitlines()
        shown = [l.split()[0] for l in lines if l.strip() and l.split()[0].isdigit()]
        assert shown == ["35", "36", "37", "38", "39"]

    def test_report_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with ProfileSession(trace_path=path, memory=True):
            x = Tensor(np.ones((8, 8)), requires_grad=True)
            _ = x * x
        report = render_memory_report_file(path, top=5)
        assert "== Tape memory: peak live" in report

    def test_report_file_without_memory_record_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with ProfileSession(trace_path=path):
            pass
        with pytest.raises(ValueError, match="repro profile --memory"):
            render_memory_report_file(path)
