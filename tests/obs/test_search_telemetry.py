"""Search telemetry: event stream contents and the bit-identical guarantee."""

import numpy as np

from repro.core.search import SaneSearcher, SearchConfig
from repro.core.search_space import SearchSpace
from repro.obs import EventRecorder, record_events
from repro.obs.search_telemetry import (
    argmax_genotype,
    genotype_flips,
    grad_l2_norm,
    row_entropy,
    softmax_rows,
)

SMALL_SPACE = SearchSpace(
    num_layers=2, node_ops=("gcn", "sage-mean"), layer_ops=("concat", "max")
)
FAST = SearchConfig(epochs=3, hidden_dim=8, dropout=0.1)


class TestPureHelpers:
    def test_softmax_rows_normalises_and_is_stable(self):
        probs = softmax_rows(np.array([[1000.0, 1000.0], [0.0, 10.0]]))
        assert np.allclose(probs.sum(axis=-1), 1.0)
        assert np.allclose(probs[0], [0.5, 0.5])
        assert probs[1, 1] > 0.99

    def test_row_entropy_peaks_at_uniform(self):
        uniform = row_entropy(np.array([[0.25, 0.25, 0.25, 0.25]]))
        assert np.isclose(uniform[0], np.log(4.0))
        sharp = row_entropy(np.array([[1.0, 0.0, 0.0, 0.0]]))
        assert np.isclose(sharp[0], 0.0)

    def test_argmax_genotype_is_deterministic_first_wins(self):
        alphas = {
            "node": np.zeros((2, 2)),  # exact ties on every edge
            "skip": np.zeros((2, 2)),
            "layer": np.zeros((1, 2)),
        }
        genotype = argmax_genotype(SMALL_SPACE, alphas)
        assert genotype["node"] == (SMALL_SPACE.node_ops[0],) * 2
        assert genotype["skip"] == (SMALL_SPACE.skip_ops[0],) * 2
        assert genotype["layer"] == SMALL_SPACE.layer_ops[0]
        # Identical input, identical output — no RNG anywhere.
        assert argmax_genotype(SMALL_SPACE, alphas) == genotype

    def test_genotype_flips_reports_per_edge_changes(self):
        old = {"node": ("gcn", "gcn"), "skip": ("zero", "zero"), "layer": "max"}
        new = {"node": ("gcn", "gat"), "skip": ("zero", "zero"), "layer": "concat"}
        flips = genotype_flips(old, new)
        assert flips == [
            {"edge": "node/1", "from": "gcn", "to": "gat"},
            {"edge": "layer/0", "from": "max", "to": "concat"},
        ]

    def test_grad_l2_norm_skips_gradless_params(self):
        class P:
            def __init__(self, grad):
                self.grad = grad

        params = [P(np.array([3.0])), P(None), P(np.array([4.0]))]
        assert np.isclose(grad_l2_norm(params), 5.0)


class TestSearchEventStream:
    def test_search_emits_the_documented_events(self, tiny_graph):
        with record_events(label="t") as recorder:
            SaneSearcher(SMALL_SPACE, tiny_graph, FAST, seed=0).search()
        names = [r["event"] for r in recorder.records]
        assert names[0] == "search_start"
        assert names[-1] == "search_end"
        assert names.count("alpha_snapshot") == FAST.epochs
        assert names.count("epoch_metrics") == FAST.epochs
        assert "genotype" in names  # initial argmax baseline

        start = recorder.events("search_start")[0]["data"]
        assert start["space"]["node_ops"] == list(SMALL_SPACE.node_ops)
        assert start["epochs"] == FAST.epochs

        snapshot = recorder.events("alpha_snapshot")[0]["data"]
        probs = np.array(snapshot["probs"]["node"])
        assert np.allclose(probs.sum(axis=-1), 1.0)
        assert len(snapshot["entropy"]["node"]) == SMALL_SPACE.num_layers

        metrics = recorder.events("epoch_metrics")[0]["data"]
        assert {"val_score", "train_loss", "val_loss",
                "arch_grad_norm", "weight_grad_norm"} <= set(metrics)

    def test_search_end_carries_the_derived_architecture(self, tiny_graph):
        with record_events(label="t") as recorder:
            result = SaneSearcher(SMALL_SPACE, tiny_graph, FAST, seed=1).search()
        end = recorder.events("search_end")[0]["data"]
        assert tuple(end["architecture"]["node"]) == result.architecture.node_aggregators
        assert end["architecture"]["layer"] == result.architecture.layer_aggregator


class TestBitIdenticalWithRecorder:
    def test_recorded_search_matches_unrecorded(self, tiny_graph):
        plain = SaneSearcher(SMALL_SPACE, tiny_graph, FAST, seed=7)
        plain_result = plain.search()

        recorded = SaneSearcher(SMALL_SPACE, tiny_graph, FAST, seed=7)
        with EventRecorder(label="t"):
            recorded_result = recorded.search()

        assert recorded_result.architecture == plain_result.architecture
        for name in ("alpha_node", "alpha_skip", "alpha_layer"):
            assert np.array_equal(
                getattr(recorded.supernet, name).data,
                getattr(plain.supernet, name).data,
            )
        for snap_a, snap_b in zip(
            recorded_result.alpha_snapshots, plain_result.alpha_snapshots
        ):
            for kind in ("node", "skip", "layer"):
                assert np.array_equal(snap_a[kind], snap_b[kind])

    def test_recorded_training_matches_unrecorded(self, tiny_graph):
        from repro.gnn.models import build_baseline
        from repro.train.trainer import TrainConfig, fit

        def run():
            rng = np.random.default_rng(3)
            model = build_baseline(
                "gcn", tiny_graph.num_features, tiny_graph.num_classes, rng,
                hidden_dim=8, num_layers=2,
            )
            return fit(model, tiny_graph, TrainConfig(epochs=5))

        plain = run()
        with record_events(label="t") as recorder:
            recorded = run()
        assert recorded.val_score == plain.val_score
        assert recorded.test_score == plain.test_score
        assert recorded.history == plain.history
        assert len(recorder.events("train_epoch")) == 5
