"""Metrics snapshotter, text exposition, and the HTTP scrape endpoint."""

import json
import urllib.request

import pytest

from repro.obs import (
    MetricsExporter,
    MetricsRegistry,
    MetricsSnapshotter,
    SNAPSHOT_VERSION,
    parse_exposition,
    read_snapshots,
    render_exposition,
)
from repro.obs.exporter import prom_name


def make_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("serve.requests").inc(7)
    registry.gauge("serve.latency.p99_s").set(0.25)
    registry.histogram("serve.batch_size").observe(4)
    registry.histogram("serve.batch_size").observe(8)
    return registry


class TestSnapshotter:
    def test_flush_writes_versioned_jsonl(self, tmp_path):
        registry = make_registry()
        path = tmp_path / "snapshots.jsonl"
        snapshotter = MetricsSnapshotter(registry, path)
        snapshotter.flush()
        registry.counter("serve.requests").inc()
        snapshotter.flush()
        snapshotter.close()

        records = read_snapshots(path)
        assert records[0] == {
            "type": "snapshot-meta", "version": SNAPSHOT_VERSION,
        }
        snaps = [r for r in records if r["type"] == "metrics-snapshot"]
        assert [snap["seq"] for snap in snaps] == [0, 1]
        assert snaps[0]["data"]["counters"]["serve.requests"]["value"] == 7.0
        assert snaps[1]["data"]["counters"]["serve.requests"]["value"] == 8.0

    def test_no_clock_means_byte_identical_files(self, tmp_path):
        payloads = []
        for name in ("a.jsonl", "b.jsonl"):
            path = tmp_path / name
            snapshotter = MetricsSnapshotter(make_registry(), path)
            snapshotter.flush()
            snapshotter.close()
            payloads.append(path.read_bytes())
        assert payloads[0] == payloads[1]

    def test_background_thread_flushes_and_stops(self, tmp_path):
        registry = make_registry()
        path = tmp_path / "live.jsonl"
        with MetricsSnapshotter(registry, path, interval_s=0.01) as snapshotter:
            snapshotter._stop.wait(0.1)
        snapshotter.close()
        snaps = [
            r for r in read_snapshots(path) if r["type"] == "metrics-snapshot"
        ]
        assert snaps  # at least the stop() final flush
        assert snapshotter.flushes == len(snaps)

    def test_rejects_nonpositive_interval(self, tmp_path):
        with pytest.raises(ValueError):
            MetricsSnapshotter(make_registry(), tmp_path / "x", interval_s=0)

    def test_read_rejects_headerless_file(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"type": "metrics-snapshot"}) + "\n")
        with pytest.raises(ValueError, match="snapshot-meta"):
            read_snapshots(path)


class TestExposition:
    def test_names_are_sanitised(self):
        assert prom_name("serve.stage.queue_wait.p99_s") == (
            "serve_stage_queue_wait_p99_s"
        )
        assert prom_name("kernel.scatter-add.bytes") == (
            "kernel_scatter_add_bytes"
        )
        assert prom_name("0weird") == "_0weird"

    def test_render_parse_round_trip(self):
        text = render_exposition(make_registry().snapshot())
        samples = parse_exposition(text)
        assert samples["serve_requests"] == 7.0
        assert samples["serve_latency_p99_s"] == 0.25
        assert samples["serve_batch_size_count"] == 2.0
        assert samples["serve_batch_size_sum"] == 12.0
        assert samples["serve_batch_size_min"] == 4.0
        assert samples["serve_batch_size_max"] == 8.0

    def test_exemplar_renders_and_parses(self):
        snapshot = make_registry().snapshot()
        text = render_exposition(
            snapshot, exemplars={"serve.latency.p99_s": "t-0000002a"}
        )
        line = next(
            l for l in text.splitlines()
            if l.startswith("serve_latency_p99_s ")
        )
        assert '# {trace_id="t-0000002a"}' in line
        # The strict parser strips the exemplar suffix.
        assert parse_exposition(text)["serve_latency_p99_s"] == 0.25

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ValueError, match="no samples"):
            parse_exposition("")
        with pytest.raises(ValueError, match="name value"):
            parse_exposition("a b c\n")
        with pytest.raises(ValueError, match="non-numeric"):
            parse_exposition("metric abc\n")
        with pytest.raises(ValueError, match="invalid sample name"):
            parse_exposition("bad.name 1.0\n")
        with pytest.raises(ValueError, match="unknown comment"):
            parse_exposition("# HELLO there\nmetric 1.0\n")


class TestExporterEndpoint:
    def test_scrape_serves_live_exposition(self):
        registry = make_registry()
        with MetricsExporter.for_registry(registry, port=0) as exporter:
            body = urllib.request.urlopen(exporter.url, timeout=5).read()
            samples = parse_exposition(body.decode("utf-8"))
            assert samples["serve_requests"] == 7.0
            # Live: a second scrape sees the updated counter.
            registry.counter("serve.requests").inc(3)
            body = urllib.request.urlopen(exporter.url, timeout=5).read()
            assert parse_exposition(body.decode())["serve_requests"] == 10.0
            assert exporter.scrapes == 2

    def test_healthz_and_404(self):
        with MetricsExporter.for_registry(make_registry(), port=0) as exporter:
            base = f"http://{exporter.host}:{exporter.port}"
            assert urllib.request.urlopen(
                f"{base}/healthz", timeout=5
            ).read() == b"ok\n"
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(f"{base}/nope", timeout=5)
            assert exporter.scrapes == 0  # only /metrics counts

    def test_exemplars_from_provider(self):
        registry = make_registry()
        provider = lambda: (
            registry.snapshot(), {"serve.latency.p99_s": "t-00000001"}
        )
        with MetricsExporter(provider, port=0) as exporter:
            text = urllib.request.urlopen(exporter.url, timeout=5).read()
            assert b'trace_id="t-00000001"' in text

    def test_wait_for_scrape(self):
        with MetricsExporter.for_registry(make_registry(), port=0) as exporter:
            assert not exporter.wait_for_scrape(timeout_s=0.05, poll_s=0.01)
            urllib.request.urlopen(exporter.url, timeout=5).read()
            assert exporter.wait_for_scrape(timeout_s=1.0, poll_s=0.01)
