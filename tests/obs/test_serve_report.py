"""The ``repro report serve`` dashboard over a synthetic serve trace."""

import pytest

from repro.obs import JsonlSink, MetricsRegistry, Tracer
from repro.obs.context import REQUEST_STAGES, RequestTracer
from repro.obs.serve_report import (
    load_request_trees,
    render_serve_report,
)
from repro.obs.sinks import read_trace


class FakeClock:
    def __init__(self, step: float = 0.5):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


def write_trace(path, requests=3, with_metrics=False):
    """Record ``requests`` complete request trees with a fake clock."""
    tracer = Tracer(clock=FakeClock())
    factory = RequestTracer(tracer)
    with JsonlSink(path, meta={"label": "serve:test"}) as sink:
        tracer.add_sink(sink)
        for __ in range(requests):
            trace = factory.start_request()
            for stage in REQUEST_STAGES:
                trace.stage(stage).finish()
            trace.finish(status="ok")
        tracer.remove_sink(sink)
        if with_metrics:
            registry = MetricsRegistry()
            registry.counter("serve.requests").inc(requests)
            registry.counter("serve.errors").inc(1)
            registry.counter("serve.deadline_exceeded")
            registry.gauge("serve.slo.availability").set(0.75)
            sink.write_metrics(registry)
    return path


class TestLoadRequestTrees:
    def test_trees_reassemble_with_all_stages(self, tmp_path):
        path = write_trace(tmp_path / "trace.jsonl", requests=3)
        trees = load_request_trees(read_trace(path))
        assert len(trees) == 3
        for tree in trees:
            assert {span["name"] for span in tree.stages} == set(REQUEST_STAGES)
            for span in tree.stages:
                assert span["parent"] == tree.root["id"]

    def test_trace_ids_in_order(self, tmp_path):
        path = write_trace(tmp_path / "trace.jsonl", requests=2)
        trees = load_request_trees(read_trace(path))
        assert [tree.trace_id for tree in trees] == [
            "t-00000000", "t-00000001",
        ]


class TestRenderServeReport:
    def test_sections_present(self, tmp_path):
        path = write_trace(tmp_path / "trace.jsonl")
        text = render_serve_report(path, top=2)
        assert "Per-stage latency breakdown" in text
        assert "Queue-depth timeline" in text
        assert "Slowest traces (top 2)" in text
        for stage in REQUEST_STAGES:
            assert stage in text
        assert "requests: 3 (3 with all 6 stages)" in text

    def test_stage_sums_consistent_with_latency(self, tmp_path):
        # Fake clock: every span is exactly one step long; the root
        # opens first and closes last, so stage coverage is < 100% but
        # every per-trace coverage line parses and is positive.
        path = write_trace(tmp_path / "trace.jsonl")
        trees = load_request_trees(read_trace(path))
        for tree in trees:
            assert 0.0 < tree.stage_sum() <= tree.duration

    def test_deterministic_output(self, tmp_path):
        a = render_serve_report(write_trace(tmp_path / "a.jsonl"))
        b = render_serve_report(write_trace(tmp_path / "b.jsonl"))
        assert a.replace("a.jsonl", "") == b.replace("b.jsonl", "")

    def test_slo_section_from_metrics_record(self, tmp_path):
        path = write_trace(tmp_path / "trace.jsonl", with_metrics=True)
        text = render_serve_report(path)
        assert "== SLO ==" in text
        assert "requests 3, errors 1, deadline_exceeded 0" in text
        assert "availability 0.750000" in text

    def test_no_slo_section_without_metrics(self, tmp_path):
        path = write_trace(tmp_path / "trace.jsonl")
        assert "== SLO ==" not in render_serve_report(path)

    def test_rejects_trace_without_requests(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        with JsonlSink(path):
            pass
        with pytest.raises(ValueError, match="no serve.request spans"):
            render_serve_report(path)
