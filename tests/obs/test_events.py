"""Event log v1: recorder mechanics, no-op guarantee, file format."""

import json

import numpy as np
import pytest

from repro.obs import EventRecorder, read_trace, record_events
from repro.obs.events import (
    EVENTS_VERSION,
    emit,
    enabled,
    get_recorder,
    install,
    to_jsonable,
    uninstall,
)


class FakeClock:
    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestToJsonable:
    def test_numpy_containers_become_plain_python(self):
        payload = to_jsonable(
            {
                "matrix": np.arange(4.0).reshape(2, 2),
                "scalar": np.float64(1.5),
                "flag": np.bool_(True),
                "nested": [np.int64(3), (np.float32(0.5),)],
            }
        )
        assert payload == {
            "matrix": [[0.0, 1.0], [2.0, 3.0]],
            "scalar": 1.5,
            "flag": True,
            "nested": [3, [0.5]],
        }
        json.dumps(payload)  # round-trips without a custom encoder


class TestEventRecorder:
    def test_records_sequence_epoch_and_data(self):
        recorder = EventRecorder(label="t")
        recorder.emit("search_start", mode="transductive")
        recorder.emit("epoch_metrics", epoch=3, val_score=0.5)
        assert [r["seq"] for r in recorder.records] == [0, 1]
        assert recorder.records[0]["data"] == {"mode": "transductive"}
        assert recorder.records[1]["epoch"] == 3
        assert "t" not in recorder.records[0]  # no clock, no wall time

    def test_clock_stamps_wall_time(self):
        recorder = EventRecorder(clock=FakeClock(step=0.5))
        recorder.emit("a")
        recorder.emit("b")
        assert recorder.records[0]["t"] == 0.0
        assert recorder.records[1]["t"] == 0.5

    def test_events_filter_by_name(self):
        recorder = EventRecorder()
        recorder.emit("x")
        recorder.emit("y")
        recorder.emit("x")
        assert len(recorder.events("x")) == 2
        assert len(recorder.events()) == 3

    def test_emits_are_noops_until_installed(self):
        assert not enabled()
        emit("ghost", value=1)  # must not raise, must not record anywhere
        recorder = EventRecorder()
        with recorder:
            assert enabled()
            assert get_recorder() is recorder
            emit("real", value=2)
        assert not enabled()
        assert [r["event"] for r in recorder.records] == ["real"]

    def test_double_install_raises(self):
        first, second = EventRecorder(), EventRecorder()
        install(first)
        try:
            with pytest.raises(RuntimeError):
                install(second)
        finally:
            uninstall(first)

    def test_uninstall_of_other_recorder_is_noop(self):
        first, second = EventRecorder(), EventRecorder()
        install(first)
        uninstall(second)
        assert get_recorder() is first
        uninstall(first)
        assert get_recorder() is None


class TestEventFiles:
    def test_file_is_a_v1_trace_with_event_records(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with record_events(path, label="demo") as recorder:
            recorder.emit("search_start", seed=7)
            recorder.emit("alpha_snapshot", epoch=0, probs=[[0.5, 0.5]])
        records = read_trace(path)
        assert records[0]["type"] == "trace-meta"
        assert records[0]["label"] == "demo"
        assert records[0]["events_version"] == EVENTS_VERSION
        events = [r for r in records if r["type"] == "event"]
        assert [r["event"] for r in events] == ["search_start", "alpha_snapshot"]

    def test_seeded_reruns_are_byte_identical_without_clock(self, tmp_path):
        payloads = []
        for name in ("a.jsonl", "b.jsonl"):
            path = tmp_path / name
            with record_events(path, label="same") as recorder:
                recorder.emit("epoch_metrics", epoch=0, val_score=0.25)
                recorder.emit("genotype", genotype={"node": ["gcn"]})
            payloads.append(path.read_bytes())
        assert payloads[0] == payloads[1]

    def test_spans_interleave_when_requested(self, tmp_path):
        from repro import obs

        path = tmp_path / "mixed.jsonl"
        with record_events(path, label="mix", spans=True):
            with obs.span("phase"):
                emit("inside", epoch=0)
        types = {r["type"] for r in read_trace(path)}
        assert {"trace-meta", "event", "span"} <= types

    def test_spans_without_path_rejected(self):
        with pytest.raises(ValueError):
            with record_events(spans=True):
                pass  # pragma: no cover
