"""Tape health: anomaly provenance, gradient gauges, zero-overhead."""

import gc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor, kernels, ops
from repro.autograd.tensor import get_tape_hook
from repro.core.search import SaneSearcher, SearchConfig
from repro.core.search_space import SearchSpace
from repro.graph.datasets import transductive_split
from repro.graph.generators import citation_graph
from repro.obs import EventRecorder
from repro.obs import events as events_module
from repro.obs.health import (
    HealthMonitor,
    NumericsAnomaly,
    check_numerics,
    current_op_scope,
    enabled,
    get_monitor,
    op_scope,
)
from repro.obs.spans import get_tracer

SMALL_SPACE = SearchSpace(
    num_layers=2, node_ops=("gcn", "sage-mean"), layer_ops=("concat", "max")
)
FAST = SearchConfig(epochs=3, hidden_dim=8, dropout=0.1)


def _module_tiny_graph():
    """Module-scope twin of the ``tiny_graph`` fixture (hypothesis tests
    cannot use function-scoped fixtures)."""
    generator = np.random.default_rng(7)
    graph = citation_graph(
        num_nodes=120,
        num_classes=4,
        num_features=24,
        rng=generator,
        avg_degree=4.0,
        homophily=0.85,
        feature_signal=0.6,
        words_per_node=6,
        name="tiny",
    )
    return transductive_split(graph, generator)


GRAPH = _module_tiny_graph()


def _current_epoch():
    for span in reversed(get_tracer()._stack):
        if span.name == "epoch":
            return span.attrs.get("index")
    return None


def _drain_spans():
    """Close spans a raised anomaly left open (the manual search span)."""
    tracer = get_tracer()
    if tracer._stack:
        tracer._stack[0].finish()


def _poison_forward(candidate, target_epoch):
    """Make ``candidate`` emit a NaN forward output at ``target_epoch``."""
    original = candidate.forward

    def poisoned(h, cache, ctx):
        out = original(h, cache, ctx)
        if _current_epoch() == target_epoch:
            out = out * float("nan")
        return out

    candidate.forward = poisoned


def _poison_backward(candidate, target_epoch):
    """Make ``candidate``'s VJP emit NaN grads at ``target_epoch``
    (forward output stays clean)."""
    original = candidate.forward

    def poisoned(h, cache, ctx):
        out = original(h, cache, ctx)
        if _current_epoch() != target_epoch:
            return out

        def poison_grad(grad):
            return (np.full_like(np.asarray(grad), np.nan),)

        poison_grad.__qualname__ = "poison_grad"
        return Tensor._from_op(out.data, (out,), poison_grad)

    candidate.forward = poisoned


injection_points = st.tuples(
    st.integers(0, SMALL_SPACE.num_layers - 1),  # layer
    st.integers(0, len(SMALL_SPACE.node_ops) - 1),  # op index
    st.integers(0, FAST.epochs - 1),  # epoch
    st.sampled_from(kernels.BACKENDS),
)


class TestInjectedNanIsCaught:
    @given(injection_points)
    @settings(max_examples=6, deadline=None)
    def test_forward_nan_names_op_layer_and_epoch(self, point):
        layer, op_index, target_epoch, backend = point
        searcher = SaneSearcher(SMALL_SPACE, GRAPH, FAST, seed=3)
        _poison_forward(
            searcher.supernet.node_candidates[layer][op_index], target_epoch
        )
        try:
            with kernels.use_backend(backend):
                with check_numerics(mode="raise"):
                    with pytest.raises(NumericsAnomaly) as excinfo:
                        searcher.search()
        finally:
            _drain_spans()
        anomaly = excinfo.value
        assert anomaly.kind == "NaN"
        assert anomaly.phase == "forward"
        assert anomaly.op == "mul"  # the poisoning `out * nan` op
        assert anomaly.edge == f"node/{layer}"
        assert anomaly.layer == layer
        assert anomaly.epoch == target_epoch
        assert "epoch" in anomaly.span_path
        # The exception message names the site without a debugger.
        assert f"edge='node/{layer}'" in str(anomaly)

    @given(injection_points)
    @settings(max_examples=6, deadline=None)
    def test_backward_nan_names_op_layer_and_epoch(self, point):
        layer, op_index, target_epoch, backend = point
        searcher = SaneSearcher(SMALL_SPACE, GRAPH, FAST, seed=3)
        _poison_backward(
            searcher.supernet.node_candidates[layer][op_index], target_epoch
        )
        try:
            with kernels.use_backend(backend):
                with check_numerics(mode="raise"):
                    with pytest.raises(NumericsAnomaly) as excinfo:
                        searcher.search()
        finally:
            _drain_spans()
        anomaly = excinfo.value
        assert anomaly.kind == "NaN"
        assert anomaly.phase == "backward"
        assert anomaly.op == "poison_grad"
        assert anomaly.edge == f"node/{layer}"
        assert anomaly.layer == layer
        assert anomaly.epoch == target_epoch


class TestZeroOverhead:
    def test_monitored_search_is_bit_identical(self, tiny_graph):
        plain = SaneSearcher(SMALL_SPACE, tiny_graph, FAST, seed=7)
        plain_result = plain.search()

        monitored = SaneSearcher(SMALL_SPACE, tiny_graph, FAST, seed=7)
        with check_numerics(mode="warn") as monitor:
            monitored_result = monitored.search()

        assert monitored_result.architecture == plain_result.architecture
        assert np.array_equal(
            monitored.supernet.alpha_node.data, plain.supernet.alpha_node.data
        )
        assert np.array_equal(
            monitored.supernet.alpha_skip.data, plain.supernet.alpha_skip.data
        )
        assert [s for _, s in monitored_result.history] == [
            s for _, s in plain_result.history
        ]
        # ... while the monitor really did check the tape.
        assert monitor.checked_entries > 0
        assert monitor.anomalies == []
        assert len(monitor.epoch_reports) == FAST.epochs

    def test_op_scope_is_shared_null_object_when_off(self):
        assert get_monitor() is None
        scope_a = op_scope(edge="node/0", layer=0, op="gcn")
        scope_b = op_scope(edge="node/1", layer=1, op="gat")
        assert scope_a is scope_b  # shared no-op: no allocation per call
        with scope_a:
            assert current_op_scope() is None


class TestMonitorLifecycle:
    def test_install_uninstall_restores_tape_hook(self):
        assert get_tape_hook() is None
        monitor = HealthMonitor(mode="warn").install()
        assert enabled()
        assert get_monitor() is monitor
        assert get_tape_hook() is not None
        monitor.uninstall()
        assert not enabled()
        assert get_tape_hook() is None

    def test_second_monitor_conflicts(self):
        first = HealthMonitor(mode="warn").install()
        try:
            with pytest.raises(RuntimeError, match="already installed"):
                HealthMonitor(mode="warn").install()
        finally:
            first.uninstall()
        assert get_tape_hook() is None

    def test_check_numerics_uninstalls_on_error(self):
        with pytest.raises(ValueError):
            with check_numerics(mode="warn"):
                raise ValueError("boom")
        assert get_monitor() is None
        assert get_tape_hook() is None

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            HealthMonitor(mode="explode")


class TestClassification:
    def test_overflow_threshold(self):
        with check_numerics(mode="warn", overflow=10.0) as monitor:
            x = Tensor(np.full(3, 100.0), requires_grad=True)
            _ = x * 1.0
        kinds = {a.kind for a in monitor.anomalies}
        assert kinds == {"overflow"}

    def test_inf_and_nan_distinguished(self):
        with check_numerics(mode="warn") as monitor:
            x = Tensor(np.ones(3), requires_grad=True)
            _ = x * float("inf")
            _ = x * float("nan")
        kinds = [a.kind for a in monitor.anomalies]
        assert "Inf" in kinds
        assert "NaN" in kinds

    def test_integer_tensors_are_skipped(self):
        monitor = HealthMonitor(mode="warn")
        assert monitor._classify(np.array([1, 2, 3])) is None
        assert monitor._classify(np.array([1.0, np.nan])) == "NaN"

    def test_healthy_ops_record_nothing(self):
        with check_numerics(mode="warn") as monitor:
            x = Tensor(np.ones((3, 3)), requires_grad=True)
            ops.sum(x * x).backward()
        assert monitor.anomalies == []
        assert monitor.checked_entries > 0


class TestWarnModeEvents:
    def test_anomalies_are_emitted_as_events(self):
        recorder = EventRecorder(label="t")
        events_module.install(recorder)
        try:
            with check_numerics(mode="warn") as monitor:
                x = Tensor(np.ones(2), requires_grad=True)
                _ = x * float("nan")
        finally:
            events_module.uninstall()
        assert len(monitor.anomalies) == 1
        emitted = [r for r in recorder.records if r["event"] == "numerics_anomaly"]
        assert len(emitted) == 1
        assert emitted[0]["data"]["kind"] == "NaN"
        assert emitted[0]["data"]["op"] == "mul"

    def test_observe_epoch_emits_grad_health_and_dead_op(self):
        recorder = EventRecorder(label="t")
        events_module.install(recorder)
        try:
            monitor = HealthMonitor(mode="warn")
            monitor.observe_epoch(
                4,
                arch_grad_norm=1.0,
                weight_grad_norm=2.0,
                mixtures={"node": np.array([[20.0, 0.0, 0.0]])},
                op_names={"node": ("gcn", "gat", "sage-mean")},
            )
        finally:
            events_module.uninstall()
        kinds = [r["event"] for r in recorder.records]
        assert "grad_health" in kinds
        assert kinds.count("dead_op") == 2  # gat and sage-mean underflow


class FakeParam:
    def __init__(self, data, grad=None):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = None if grad is None else np.asarray(grad, dtype=np.float64)


class TestEpochGauges:
    def test_grad_ratio_and_update_scale(self):
        monitor = HealthMonitor(mode="warn")
        param = FakeParam([3.0, 4.0], grad=[0.6, 0.8])
        report = monitor.observe_epoch(
            0,
            arch_params=[param],
            weight_params=[FakeParam([1.0], grad=[2.0])],
            arch_before=[np.array([3.0, 3.0])],
        )
        assert report["arch_grad_norm"] == pytest.approx(1.0)
        assert report["weight_grad_norm"] == pytest.approx(2.0)
        assert report["grad_ratio"] == pytest.approx(0.5)
        # ||delta|| / ||before|| = 1.0 / sqrt(18)
        assert report["arch_update_scale"] == pytest.approx(1.0 / np.sqrt(18.0))
        assert report["weight_update_scale"] is None  # no before copy

    def test_explicit_grad_norms_override_param_reads(self):
        monitor = HealthMonitor(mode="warn")
        report = monitor.observe_epoch(
            1,
            arch_params=[FakeParam([1.0], grad=[100.0])],
            arch_grad_norm=7.0,
            weight_grad_norm=14.0,
        )
        assert report["arch_grad_norm"] == pytest.approx(7.0)
        assert report["grad_ratio"] == pytest.approx(0.5)

    def test_dead_op_detection_and_rollup(self):
        monitor = HealthMonitor(mode="warn", dead_op_eps=1e-6)
        monitor.observe_epoch(
            2,
            mixtures={"node": np.array([[0.1, 0.2], [30.0, 0.0]])},
            op_names={"node": ("gcn", "gat")},
        )
        dead = monitor.dead_ops()
        assert dead == [
            {
                "edge": "node/1",
                "layer": 1,
                "op": "gat",
                "weight": pytest.approx(np.exp(-30.0) / (1 + np.exp(-30.0))),
                "epoch": 2,
            }
        ]
        summary = monitor.summary()
        assert summary["mode"] == "warn"
        assert summary["epochs_observed"] == 1
        assert len(summary["dead_ops"]) == 1

    def test_near_uniform_mixture_has_no_dead_ops(self):
        monitor = HealthMonitor(mode="warn")
        report = monitor.observe_epoch(
            0, mixtures={"node": np.zeros((2, 3))}, op_names={"node": ("a", "b", "c")}
        )
        assert report["dead_ops"] == []


class TestSearcherIntegration:
    def test_search_feeds_epoch_reports(self, tiny_graph):
        searcher = SaneSearcher(SMALL_SPACE, tiny_graph, FAST, seed=1)
        with check_numerics(mode="warn") as monitor:
            searcher.search()
        assert len(monitor.epoch_reports) == FAST.epochs
        for report in monitor.epoch_reports:
            assert report["arch_grad_norm"] >= 0.0
            assert report["weight_grad_norm"] > 0.0
            assert report["grad_ratio"] is not None
            assert report["weight_update_scale"] is not None
        gc.collect()  # drop the searcher's tape before the next test
