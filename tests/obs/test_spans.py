"""Span and Tracer semantics: nesting, ids, sinks, detached stopwatches."""

import pytest

from repro.obs import InMemorySink, Tracer, get_tracer, span


class FakeClock:
    """Deterministic clock: each read advances by ``step`` seconds."""

    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


def make_tracer():
    tracer = Tracer(clock=FakeClock())
    sink = InMemorySink()
    tracer.add_sink(sink)
    return tracer, sink


class TestNesting:
    def test_children_get_parent_id_and_depth(self):
        tracer, sink = make_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("middle") as middle:
                with tracer.span("inner") as inner:
                    pass
        assert outer.parent_id is None and outer.depth == 0
        assert middle.parent_id == outer.span_id and middle.depth == 1
        assert inner.parent_id == middle.span_id and inner.depth == 2

    def test_siblings_share_a_parent(self):
        tracer, sink = make_tracer()
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id
        assert a.span_id != b.span_id

    def test_sink_receives_children_before_parents(self):
        tracer, sink = make_tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in sink.spans] == ["inner", "outer"]

    def test_current_tracks_innermost_open_span(self):
        tracer, _ = make_tracer()
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None


class TestTiming:
    def test_duration_from_injected_clock(self):
        tracer, _ = make_tracer()
        with tracer.span("timed") as sp:
            pass
        # FakeClock advances 1s per read: start=0, end=1.
        assert sp.duration == pytest.approx(1.0)
        assert sp.t_end is not None

    def test_elapsed_reads_clock_while_open(self):
        tracer, _ = make_tracer()
        sp = tracer.span("open").start()
        first = sp.elapsed()
        second = sp.elapsed()
        assert second > first
        sp.finish()

    def test_exception_still_finishes_span(self):
        tracer, sink = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("failing") as sp:
                raise RuntimeError("boom")
        assert sp.t_end is not None
        assert [s.name for s in sink.spans] == ["failing"]

    def test_out_of_order_finish_force_closes_children(self):
        tracer, sink = make_tracer()
        outer = tracer.span("outer").start()
        inner = tracer.span("inner").start()
        outer.finish()  # child abandoned open
        assert inner.t_end is not None
        assert {s.name for s in sink.spans} == {"outer", "inner"}
        assert tracer.current is None


class TestDetached:
    def test_detached_span_never_joins_the_tree(self):
        tracer, sink = make_tracer()
        stopwatch = tracer.span("lifetime", kind="lifetime").start_detached()
        with tracer.span("regular") as regular:
            pass
        assert regular.parent_id is None  # stopwatch did not parent it
        assert stopwatch.span_id == -1
        assert stopwatch.elapsed() > 0
        stopwatch.finish()
        assert [s.name for s in sink.spans] == ["regular"]  # never dispatched

    def test_detached_finish_is_idempotent(self):
        tracer, _ = make_tracer()
        stopwatch = tracer.span("lifetime").start_detached()
        stopwatch.finish()
        end = stopwatch.t_end
        stopwatch.finish()
        assert stopwatch.t_end == end


class TestSinksAndModuleApi:
    def test_no_sink_no_record_but_still_timed(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("quiet") as sp:
            pass
        assert sp.duration == pytest.approx(1.0)

    def test_collect_attaches_and_detaches(self):
        tracer = Tracer(clock=FakeClock())
        sink = InMemorySink()
        with tracer.collect(sink):
            with tracer.span("inside"):
                pass
        with tracer.span("outside"):
            pass
        assert [s.name for s in sink.spans] == ["inside"]

    def test_module_span_uses_process_tracer(self):
        sink = InMemorySink()
        with get_tracer().collect(sink):
            with span("module-level", kind="test", tag=7) as sp:
                pass
        assert sp in sink.spans
        assert sp.attrs == {"tag": 7}

    def test_to_dict_record_shape(self):
        tracer, _ = make_tracer()
        with tracer.span("epoch", index=3) as sp:
            pass
        record = sp.to_dict()
        assert record["type"] == "span"
        assert record["name"] == "epoch"
        assert record["attrs"] == {"index": 3}
        assert record["dur"] == pytest.approx(record["end"] - record["start"])
