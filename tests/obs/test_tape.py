"""The composable tape-hook chain behind profiler/health/memory."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.tensor import get_tape_hook, set_tape_hook
from repro.obs.tape import active_tape_hooks, add_tape_hook, remove_tape_hook


def _recording_hook(log, name):
    def hook(data, parents, backward_fn):
        log.append(name)
        return backward_fn

    return hook


class TestChainLifecycle:
    def test_first_in_installs_last_out_removes(self):
        log = []
        first = _recording_hook(log, "a")
        second = _recording_hook(log, "b")
        assert get_tape_hook() is None
        add_tape_hook(first)
        try:
            assert get_tape_hook() is not None
            add_tape_hook(second)
            assert active_tape_hooks() == (first, second)
            remove_tape_hook(first)
            assert get_tape_hook() is not None  # one observer still active
        finally:
            remove_tape_hook(second)
            remove_tape_hook(first)  # no-op: already removed
        assert get_tape_hook() is None
        assert active_tape_hooks() == ()

    def test_double_registration_raises(self):
        hook = _recording_hook([], "a")
        add_tape_hook(hook)
        try:
            with pytest.raises(RuntimeError, match="already registered"):
                add_tape_hook(hook)
        finally:
            remove_tape_hook(hook)
        assert get_tape_hook() is None

    def test_foreign_tensor_hook_conflicts(self):
        def foreign(data, parents, backward_fn):
            return backward_fn

        set_tape_hook(foreign)
        try:
            with pytest.raises(RuntimeError):
                add_tape_hook(_recording_hook([], "a"))
        finally:
            set_tape_hook(None)
        assert active_tape_hooks() == ()

    def test_removal_leaves_foreign_hook_alone(self):
        hook = _recording_hook([], "a")
        add_tape_hook(hook)

        def foreign(data, parents, backward_fn):
            return backward_fn

        # Someone force-replaced the tensor hook behind the chain's back;
        # removing the last observer must not clobber the replacement.
        set_tape_hook(None)
        set_tape_hook(foreign)
        try:
            remove_tape_hook(hook)
            assert get_tape_hook() is foreign
        finally:
            set_tape_hook(None)


class TestDispatch:
    def test_hooks_run_in_registration_order_per_op(self):
        log = []
        first = _recording_hook(log, "a")
        second = _recording_hook(log, "b")
        add_tape_hook(first)
        add_tape_hook(second)
        try:
            x = Tensor(np.ones(3), requires_grad=True)
            _ = x * x
        finally:
            remove_tape_hook(second)
            remove_tape_hook(first)
        assert log == ["a", "b"]

    def test_wrapping_hook_feeds_next_hook(self):
        seen_qualnames = []

        def wrapping(data, parents, backward_fn):
            def wrapped(grad):
                return backward_fn(grad)

            wrapped.__qualname__ = getattr(
                backward_fn, "__qualname__", wrapped.__qualname__
            )
            return wrapped

        def observing(data, parents, backward_fn):
            seen_qualnames.append(backward_fn.__qualname__.split(".", 1)[0])
            return backward_fn

        add_tape_hook(wrapping)
        add_tape_hook(observing)
        try:
            x = Tensor(np.ones(3), requires_grad=True)
            y = x * x
            # The wrapped closure is what the tape stores and calls.
            y.backward(np.ones(3))
        finally:
            remove_tape_hook(observing)
            remove_tape_hook(wrapping)
        # The op name survives the wrap for hooks later in the chain.
        assert seen_qualnames == ["mul"]
        assert x.grad is not None
