"""Span aggregation and hotspot-report formatting (deterministic dicts)."""

import pytest

from repro.obs import aggregate_spans, hotspot_report


def span_record(id_, name, parent, start, end, depth=0):
    return {
        "type": "span",
        "id": id_,
        "parent": parent,
        "depth": depth,
        "name": name,
        "kind": "span",
        "start": start,
        "end": end,
        "dur": end - start,
    }


def sample_spans():
    # search [0, 10] -> epoch#1 [1, 4], epoch#2 [4, 9] -> forward [5, 7]
    return [
        span_record(0, "search", None, 0.0, 10.0),
        span_record(1, "epoch", 0, 1.0, 4.0, depth=1),
        span_record(2, "epoch", 0, 4.0, 9.0, depth=1),
        span_record(3, "forward", 2, 5.0, 7.0, depth=2),
    ]


class TestAggregateSpans:
    def test_paths_counts_and_totals(self):
        by_path = {a.path: a for a in aggregate_spans(sample_spans())}
        assert set(by_path) == {"search", "search/epoch", "search/epoch/forward"}
        assert by_path["search"].count == 1
        assert by_path["search/epoch"].count == 2
        assert by_path["search/epoch"].total == pytest.approx(8.0)
        assert by_path["search/epoch"].mean == pytest.approx(4.0)
        assert by_path["search/epoch"].minimum == pytest.approx(3.0)
        assert by_path["search/epoch"].maximum == pytest.approx(5.0)

    def test_self_time_excludes_direct_children(self):
        by_path = {a.path: a for a in aggregate_spans(sample_spans())}
        assert by_path["search"].self_time == pytest.approx(2.0)  # 10 - 8
        assert by_path["search/epoch"].self_time == pytest.approx(6.0)  # 8 - 2
        assert by_path["search/epoch/forward"].self_time == pytest.approx(2.0)

    def test_self_times_sum_to_root_wall_time(self):
        aggregates = aggregate_spans(sample_spans())
        assert sum(a.self_time for a in aggregates) == pytest.approx(10.0)

    def test_sorted_by_cumulative_time_descending(self):
        paths = [a.path for a in aggregate_spans(sample_spans())]
        assert paths == ["search", "search/epoch", "search/epoch/forward"]

    def test_accepts_live_span_objects(self):
        from repro.obs import InMemorySink, Tracer

        tracer = Tracer()
        sink = InMemorySink()
        tracer.add_sink(sink)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        paths = {a.path for a in aggregate_spans(sink.spans)}
        assert paths == {"outer", "outer/inner"}


class TestHotspotReport:
    def test_phase_section_lists_every_path(self):
        text = hotspot_report(sample_spans())
        assert "== Phase breakdown (spans) ==" in text
        for path in ("search", "search/epoch", "search/epoch/forward"):
            assert path in text
        assert "10.0000" in text  # search cum seconds

    def test_op_section_ranked_and_truncated(self):
        op_stats = [
            {"name": f"op{i}", "calls": 1, "tape_entries": 1,
             "forward_self": float(i), "forward_cum": float(i),
             "backward_time": 0.0, "output_bytes": 1024 * i}
            for i in range(5)
        ]
        text = hotspot_report([], op_stats=op_stats, top=3)
        assert "== Top 3 autograd ops (by self time) ==" in text
        assert "op4" in text and "op2" in text
        assert "op1" not in text and "op0" not in text
        assert "4.0KB" in text  # output_bytes rendered human-readable

    def test_metrics_section(self):
        metrics = {
            "counters": {"epochs": {"value": 3.0}},
            "gauges": {"lr": {"value": 0.01}},
            "histograms": {
                "loss": {"count": 2, "mean": 0.5, "min": 0.25, "max": 0.75},
            },
        }
        text = hotspot_report([], metrics=metrics)
        assert "== Metrics ==" in text
        assert "epochs: 3.0" in text
        assert "loss: count=2 mean=0.5" in text

    def test_empty_inputs_yield_placeholder(self):
        assert hotspot_report([]) == (
            "(empty trace: no spans, op stats, or metrics recorded)"
        )
