"""End-to-end profiling: traces from a real (tiny) search, and the
guarantee that profiling never perturbs numerical results."""

import numpy as np

from repro.core.search import SaneSearcher, SearchConfig
from repro.core.search_space import SearchSpace
from repro.obs import ProfileSession, read_trace

SMALL_SPACE = SearchSpace(
    num_layers=2, node_ops=("gcn", "sage-mean"), layer_ops=("concat", "max")
)
FAST = SearchConfig(epochs=3, hidden_dim=8, dropout=0.1)


class TestBitIdenticalResults:
    def test_profiled_search_matches_unprofiled(self, tiny_graph, tmp_path):
        plain = SaneSearcher(SMALL_SPACE, tiny_graph, FAST, seed=7)
        plain_result = plain.search()

        profiled = SaneSearcher(SMALL_SPACE, tiny_graph, FAST, seed=7)
        with ProfileSession(
            trace_path=tmp_path / "trace.jsonl", label="test"
        ) as session:
            profiled_result = profiled.search()

        assert profiled_result.architecture == plain_result.architecture
        assert np.array_equal(
            profiled.supernet.alpha_node.data, plain.supernet.alpha_node.data
        )
        assert np.array_equal(
            profiled.supernet.alpha_skip.data, plain.supernet.alpha_skip.data
        )
        for snap_a, snap_b in zip(
            profiled_result.alpha_snapshots, plain_result.alpha_snapshots
        ):
            assert np.array_equal(snap_a["node"], snap_b["node"])
        assert session.duration > 0

    def test_profiling_leaves_no_global_state(self, tiny_graph, tmp_path):
        from repro.autograd import ops
        from repro.autograd.tensor import get_tape_hook
        from repro.obs import get_tracer

        with ProfileSession(trace_path=tmp_path / "t.jsonl"):
            SaneSearcher(SMALL_SPACE, tiny_graph, FAST, seed=0).search()
        assert get_tape_hook() is None
        assert not hasattr(ops.matmul, "__obs_wrapped__")
        assert get_tracer().current is None
        assert get_tracer()._sinks == []


class TestSessionTrace:
    def test_trace_contains_spans_ops_and_metrics(self, tiny_graph, tmp_path):
        path = tmp_path / "trace.jsonl"
        with ProfileSession(trace_path=path, label="search:test") as session:
            SaneSearcher(SMALL_SPACE, tiny_graph, FAST, seed=0).search()
            session.metrics.gauge("score").set(1.0)

        records = read_trace(path)
        assert records[0]["label"] == "search:test"
        names = {r["name"] for r in records if r["type"] == "span"}
        assert {"search:test", "search", "epoch", "weight_step"} <= names
        op_stats = [r for r in records if r["type"] == "op_stats"]
        assert op_stats and any(s["name"] == "linear" for s in op_stats[0]["data"])
        metrics = [r for r in records if r["type"] == "metrics"]
        assert metrics[0]["data"]["gauges"]["score"]["value"] == 1.0

    def test_report_renders_all_sections(self, tiny_graph):
        with ProfileSession() as session:  # no trace file needed
            SaneSearcher(SMALL_SPACE, tiny_graph, FAST, seed=0).search()
            session.metrics.counter("searches").inc()
        report = session.report(top=5)
        assert "== Phase breakdown (spans) ==" in report
        assert "search/epoch" in report
        assert "autograd ops (by self time)" in report
        assert "== Metrics ==" in report

    def test_autograd_disabled_session_has_no_op_stats(self, tiny_graph, tmp_path):
        path = tmp_path / "trace.jsonl"
        with ProfileSession(trace_path=path, autograd=False) as session:
            SaneSearcher(SMALL_SPACE, tiny_graph, FAST, seed=0).search()
        assert session.op_stats() == []
        records = read_trace(path)
        op_stats = [r for r in records if r["type"] == "op_stats"]
        assert op_stats[0]["data"] == []
        assert any(r["type"] == "span" for r in records)
