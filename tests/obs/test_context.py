"""Request trace context: explicit parents, deterministic ids, threads."""

import threading

from repro.obs import InMemorySink, Tracer
from repro.obs.context import (
    REQUEST_SPAN,
    REQUEST_STAGES,
    RequestTrace,
    RequestTracer,
    TraceContext,
    context_span,
    mirror_span,
)


class FakeClock:
    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


def make_tracer():
    tracer = Tracer(clock=FakeClock())
    sink = InMemorySink()
    tracer.add_sink(sink)
    return tracer, sink


class TestRequestTracer:
    def test_trace_ids_are_deterministic(self):
        tracer, _ = make_tracer()
        factory = RequestTracer(tracer)
        ids = [factory.start_request().trace_id for __ in range(3)]
        assert ids == ["t-00000000", "t-00000001", "t-00000002"]
        assert factory.issued == 3

    def test_two_factories_name_traces_identically(self):
        ids = []
        for __ in range(2):
            tracer, _ = make_tracer()
            factory = RequestTracer(tracer)
            ids.append([factory.start_request().trace_id for __ in range(5)])
        assert ids[0] == ids[1]

    def test_custom_prefix(self):
        tracer, _ = make_tracer()
        factory = RequestTracer(tracer, prefix="req-")
        assert factory.start_request().trace_id == "req-00000000"


class TestRequestTrace:
    def test_root_span_shape(self):
        tracer, sink = make_tracer()
        trace = RequestTracer(tracer).start_request()
        trace.finish(status="ok")
        (root,) = sink.spans
        assert root.name == REQUEST_SPAN
        assert root.kind == "request"
        assert root.parent_id is None and root.depth == 0
        assert root.attrs["trace"] == trace.trace_id
        assert root.attrs["status"] == "ok"

    def test_stages_attach_to_root_not_stack(self):
        tracer, sink = make_tracer()
        # An unrelated stack span is open the whole time; explicit
        # request spans must neither parent off it nor disturb it.
        with tracer.span("outer") as outer:
            trace = RequestTracer(tracer).start_request()
            stage = trace.stage("enqueue")
            stage.finish()
            trace.finish()
            assert tracer.current is outer
        names = {span.name: span for span in sink.spans}
        root = names[REQUEST_SPAN]
        assert names["enqueue"].parent_id == root.span_id
        assert names["enqueue"].depth == 1
        assert names["outer"].parent_id is None
        assert root.parent_id is None

    def test_finish_is_idempotent(self):
        tracer, sink = make_tracer()
        trace = RequestTracer(tracer).start_request()
        trace.finish()
        end = trace.root.t_end
        trace.finish()
        assert trace.root.t_end == end
        assert len(sink.spans) == 1

    def test_stage_started_on_one_thread_finished_on_another(self):
        tracer, sink = make_tracer()
        trace = RequestTracer(tracer).start_request()
        stage = trace.stage("queue_wait")

        worker = threading.Thread(target=stage.finish)
        worker.start()
        worker.join()
        trace.finish()
        names = [span.name for span in sink.spans]
        assert names == ["queue_wait", REQUEST_SPAN]
        assert sink.spans[0].parent_id == trace.root.span_id

    def test_explicit_span_as_context_manager_does_not_restart(self):
        tracer, sink = make_tracer()
        trace = RequestTracer(tracer).start_request()
        stage = trace.stage("resolve")
        started = stage.span_id
        with stage:
            pass
        assert stage.span_id == started
        assert stage.t_end is not None
        assert tracer.current is None


class TestContextSpan:
    def test_attaches_to_named_parent(self):
        tracer, sink = make_tracer()
        ctx = TraceContext(trace_id="t-0", request_id=0, parent_span_id=41)
        span = context_span("forward", ctx, tracer=tracer)
        span.finish()
        assert span.parent_id == 41
        assert span.attrs["trace"] == "t-0"
        assert sink.spans == [span]

    def test_mirror_span_copies_window(self):
        tracer, sink = make_tracer()
        ctx = TraceContext(trace_id="t-0", request_id=0, parent_span_id=7)
        span = mirror_span("forward", ctx, 2.5, 4.0, tracer=tracer, shared=3)
        assert span.t_start == 2.5 and span.t_end == 4.0
        assert span.duration == 1.5
        assert span.parent_id == 7
        assert span.attrs["shared"] == 3
        assert sink.spans == [span]


class TestConstants:
    def test_stage_vocabulary_is_the_pipeline(self):
        assert REQUEST_STAGES == (
            "enqueue", "queue_wait", "batch_assemble",
            "forward", "slice", "resolve",
        )

    def test_context_round_trips_to_dict(self):
        ctx = TraceContext(trace_id="t-2a", request_id=42, parent_span_id=9)
        assert ctx.to_dict() == {
            "trace_id": "t-2a", "request_id": 42, "parent_span_id": 9,
        }
