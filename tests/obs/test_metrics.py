"""Counter/Gauge/Histogram instruments and the registry contract."""

import pytest

from repro.obs import MetricsRegistry


class TestInstruments:
    def test_counter_accumulates_and_rejects_decrease(self):
        registry = MetricsRegistry()
        counter = registry.counter("epochs")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_is_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("lr")
        assert gauge.value is None
        gauge.set(0.01)
        gauge.set(0.001)
        assert gauge.value == pytest.approx(0.001)

    def test_histogram_summary_statistics(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("loss")
        assert histogram.mean is None
        for value in (2.0, 4.0, 9.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.minimum == 2.0
        assert histogram.maximum == 9.0
        assert histogram.last == 9.0
        assert histogram.mean == pytest.approx(5.0)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("n") is registry.counter("n")
        assert len(registry) == 1
        assert "n" in registry and "m" not in registry

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("x")

    def test_snapshot_groups_by_kind_with_sorted_names(self):
        registry = MetricsRegistry()
        registry.gauge("b_gauge").set(2.0)
        registry.counter("a_counter").inc(3)
        registry.histogram("c_hist").observe(1.5)
        snap = registry.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert snap["counters"] == {"a_counter": {"value": 3.0}}
        assert snap["gauges"] == {"b_gauge": {"value": 2.0}}
        assert snap["histograms"]["c_hist"]["count"] == 1
        assert snap["histograms"]["c_hist"]["mean"] == pytest.approx(1.5)

    def test_snapshot_is_json_serialisable(self):
        import json

        registry = MetricsRegistry()
        registry.histogram("h").observe(1.0)
        registry.gauge("g").set(0.5)
        assert json.loads(json.dumps(registry.snapshot()))["gauges"]["g"]["value"] == 0.5
