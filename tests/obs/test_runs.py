"""The run ledger: ids, the store, and the cross-run trend gate."""

import json

import pytest

from repro.cli import main
from repro.obs import MetricsRegistry
from repro.obs.runs import (
    LedgerWarning,
    RunLedger,
    RunManifest,
    build_manifest,
    canonical_json,
    config_digest,
    derive_run_id,
    env_fingerprint,
    record_run,
)
from repro.obs.runs_report import (
    evaluate_trend,
    metric_series,
    render_run_show,
    render_runs_diff,
    render_runs_list,
    render_trend,
)

ENV = {
    "scale": "smoke", "seed": 0, "kernels": "fused", "workers": 0,
    "git_rev": "abc123abc123", "python": "3.11.0",
}


def _manifest(command="search", config=None, **kwargs):
    kwargs.setdefault("env", dict(ENV))
    kwargs.setdefault("clock", lambda: 1_000_000.0)
    return build_manifest(command, config or {"dataset": "cora"}, **kwargs)


class TestDigestsAndIds:
    def test_config_digest_is_key_order_insensitive(self):
        a = config_digest({"dataset": "cora", "layers": 3})
        b = config_digest({"layers": 3, "dataset": "cora"})
        assert a == b
        assert len(a) == 16

    def test_config_digest_changes_with_content(self):
        assert config_digest({"layers": 3}) != config_digest({"layers": 4})

    def test_run_id_excludes_timings_and_metrics(self):
        # A seeded rerun that produced the same outputs IS the same run,
        # however long it took and whatever clock stamped it.
        fast = _manifest(
            metrics={"search.time_s": 1.0}, duration_s=1.0,
            clock=lambda: 111.0, outputs={"architecture": "gcn"},
        )
        slow = _manifest(
            metrics={"search.time_s": 9.0}, duration_s=9.0,
            clock=lambda: 999.0, outputs={"architecture": "gcn"},
        )
        assert fast.run_id == slow.run_id
        assert fast.config_digest == slow.config_digest

    def test_run_id_covers_command_config_env_outputs(self):
        base = _manifest()
        assert _manifest(command="sweep").run_id != base.run_id
        assert _manifest(config={"dataset": "citeseer"}).run_id != base.run_id
        other_env = dict(ENV, seed=1)
        assert _manifest(env=other_env).run_id != base.run_id
        assert _manifest(outputs={"architecture": "x"}).run_id != base.run_id

    def test_run_id_is_deterministic_and_shaped(self):
        run_id = derive_run_id("search", "ab" * 8, ENV, {"a": 1})
        assert run_id == derive_run_id("search", "ab" * 8, ENV, {"a": 1})
        assert run_id.startswith("r") and len(run_id) == 13

    def test_registry_scalars_flatten_every_instrument(self):
        registry = MetricsRegistry()
        registry.counter("jobs").inc(3)
        registry.gauge("util").set(0.5)
        registry.histogram("lat").observe(2.0)
        registry.histogram("lat").observe(4.0)
        registry.gauge("unset")  # None value: omitted
        assert registry.scalars() == {
            "jobs": 3.0, "util": 0.5, "lat": 3.0,
        }

    def test_explicit_metrics_override_registry(self):
        registry = MetricsRegistry()
        registry.gauge("x").set(1.0)
        manifest = _manifest(registry=registry, metrics={"x": 2.0, "y": 3.0})
        assert manifest.metrics == {"x": 2.0, "y": 3.0}


class TestLedgerStore:
    def test_append_read_round_trip(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        first = _manifest(outputs={"n": 1})
        second = _manifest(outputs={"n": 2}, lineage={"producer_run_id": first.run_id})
        assert ledger.append(first) and ledger.append(second)
        loaded = ledger.read()
        assert [m.run_id for m in loaded] == [first.run_id, second.run_id]
        assert loaded[1].lineage == {"producer_run_id": first.run_id}
        assert loaded[0].env == ENV

    def test_corrupt_and_truncated_lines_are_skipped_with_warning(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        ledger = RunLedger(path)
        good = _manifest()
        ledger.append(good)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{not json at all\n")
            handle.write(canonical_json({"version": 999, "run_id": "rX"}) + "\n")
        ledger.append(_manifest(command="sweep"))
        # Simulate a torn append: truncate the last line mid-record.
        raw = path.read_text(encoding="utf-8")
        path.write_text(raw[:-20] + "\n", encoding="utf-8")
        with pytest.warns(LedgerWarning):
            loaded = ledger.read()
        assert [m.run_id for m in loaded] == [good.run_id]

    def test_resolve_by_prefix_index_and_miss(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        manifests = [_manifest(outputs={"n": i}) for i in range(3)]
        for m in manifests:
            ledger.append(m)
        hit = ledger.resolve(manifests[1].run_id[:6])
        assert hit is not None and hit[1] == 1
        assert ledger.resolve("-1")[0].run_id == manifests[2].run_id
        assert ledger.resolve("0")[1] == 0
        assert ledger.resolve("zzzz") is None
        assert ledger.resolve("99") is None

    def test_rerun_shares_id_and_prefix_resolves_to_latest(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        ledger.append(_manifest(clock=lambda: 1.0))
        ledger.append(_manifest(clock=lambda: 2.0))
        manifests = ledger.read()
        assert manifests[0].run_id == manifests[1].run_id
        __, seq = ledger.resolve(manifests[0].run_id)
        assert seq == 1

    def test_gc_keeps_newest_and_drops_corruption(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        ledger = RunLedger(path)
        for i in range(5):
            ledger.append(_manifest(outputs={"n": i}))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("garbage\n")
        with pytest.warns(LedgerWarning):
            dropped = ledger.gc(keep=2)
        assert dropped == 4
        kept = ledger.read()
        assert [m.outputs["n"] for m in kept] == [3, 4]

    def test_record_run_respects_kill_switch(self, tmp_path, monkeypatch):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        monkeypatch.setenv("REPRO_RUN_LEDGER", "off")
        assert record_run("search", {}, env=dict(ENV), ledger=ledger) is None
        assert ledger.read() == []
        monkeypatch.delenv("REPRO_RUN_LEDGER")
        assert record_run("search", {}, env=dict(ENV), ledger=ledger) is not None
        assert len(ledger.read()) == 1

    def test_append_failure_warns_instead_of_crashing(self, tmp_path):
        ledger = RunLedger(tmp_path)  # a directory: open() fails
        with pytest.warns(LedgerWarning):
            assert ledger.append(_manifest()) is False


def _history(tmp_path, values, metric="search.epoch_ms", command="search"):
    """Write a ledger whose manifests carry one metric series."""
    path = tmp_path / "seed.jsonl"
    ledger = RunLedger(path)
    for i, value in enumerate(values):
        env = dict(ENV, git_rev=f"{i:012x}")
        ledger.append(
            build_manifest(
                command, {"dataset": "cora"}, env=env,
                metrics={metric: value}, clock=lambda i=i: 1_000.0 + i,
            )
        )
    return path


class TestTrendGate:
    def test_stable_history_passes_and_spike_gates(self, tmp_path, capsys):
        # The PR's acceptance case: a committed seed history passes the
        # gate; appending one +50% drift run flips it to exit 1.
        path = _history(tmp_path, [100.0, 102.0, 98.0, 101.0, 99.0, 100.0])
        assert main(
            ["runs", "trend", "search.epoch_ms", "--gate",
             "--history", str(path)]
        ) == 0
        drifted = RunLedger(path)
        drifted.append(
            build_manifest(
                "search", {"dataset": "cora"},
                env=dict(ENV, git_rev="f" * 12),
                metrics={"search.epoch_ms": 150.0}, clock=lambda: 2_000.0,
            )
        )
        assert main(
            ["runs", "trend", "search.epoch_ms", "--gate",
             "--history", str(path)]
        ) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "GATE" in out

    def test_sustained_creep_gates_through_wider_window(self):
        # No single step trips 25%, but the trailing window vs the
        # median of the older history does.
        values = [100.0, 100.0, 100.0, 100.0, 120.0, 135.0, 150.0]
        verdict = evaluate_trend(values, "search.epoch_ms")
        assert verdict.status == "regression"
        assert verdict.gates

    def test_improvement_does_not_gate(self, tmp_path):
        path = _history(tmp_path, [100.0, 101.0, 99.0, 100.0, 60.0, 55.0])
        assert main(
            ["runs", "trend", "search.epoch_ms", "--gate",
             "--history", str(path)]
        ) == 0

    def test_higher_is_better_metric_gates_on_drop(self):
        verdict = evaluate_trend(
            [10.0, 10.1, 9.9, 10.0, 5.0], "kernel.scatter_sum.effective_gbps"
        )
        assert verdict.status == "regression"
        up = evaluate_trend([10.0, 10.1, 9.9, 10.0, 15.0], "serve.rps")
        assert up.status == "improved" and not up.gates

    def test_no_data_gates_and_untracked_never_does(self, tmp_path, capsys):
        path = _history(tmp_path, [1.0, 1.0, 1.0], metric="some.mystery")
        assert main(
            ["runs", "trend", "search.epoch_ms", "--gate",
             "--history", str(path)]
        ) == 1
        assert main(
            ["runs", "trend", "some.mystery", "--gate", "--history", str(path)]
        ) == 0
        capsys.readouterr()

    def test_insufficient_history_renders_without_gating(self):
        verdict = evaluate_trend([100.0, 150.0], "search.epoch_ms")
        assert verdict.status == "insufficient"
        assert not verdict.gates

    def test_without_gate_flag_regression_still_exits_zero(self, tmp_path, capsys):
        path = _history(tmp_path, [100.0] * 5 + [200.0])
        assert main(
            ["runs", "trend", "search.epoch_ms", "--history", str(path)]
        ) == 0
        capsys.readouterr()

    def test_metric_series_filters_by_command(self, tmp_path):
        path = _history(tmp_path, [1.0, 2.0])
        ledger = RunLedger(path)
        ledger.append(
            build_manifest(
                "bench", {}, env=dict(ENV),
                metrics={"search.epoch_ms": 9.0}, clock=lambda: 5.0,
            )
        )
        manifests = ledger.read()
        assert metric_series(manifests, "search.epoch_ms") == [1.0, 2.0, 9.0]
        assert metric_series(
            manifests, "search.epoch_ms", command="search"
        ) == [1.0, 2.0]


class TestRenderers:
    def test_list_show_and_diff_render(self, tmp_path):
        producer = _manifest(
            command="export", outputs={"task": "node"},
            metrics={"export.val_score": 0.9},
        )
        consumer = _manifest(
            command="serve",
            metrics={"serve.latency.p50_s": 0.002, "export.val_score": 0.8},
            lineage={
                "producer_run_id": producer.run_id,
                "artifact": "artifact.json",
            },
        )
        listing = render_runs_list([producer, consumer])
        assert producer.run_id in listing and "serve" in listing
        shown = render_run_show(consumer, seq=1, producer=producer)
        assert f"produced by {producer.run_id}" in shown
        orphan = render_run_show(consumer, seq=1, producer=None)
        assert "not found in this ledger" in orphan
        diff = render_runs_diff(producer, consumer)
        assert "export.val_score" in diff

    def test_trend_renders_sparkline_table(self):
        manifests = [
            _manifest(metrics={"search.epoch_ms": v})
            for v in (100.0, 101.0, 99.0, 100.0)
        ]
        text, failed = render_trend(manifests, ["search.epoch_ms"])
        assert "search.epoch_ms" in text
        assert not failed


class TestManifestRecord:
    def test_to_record_drops_empty_optionals(self):
        record = _manifest().to_record()
        assert "lineage" not in record and "children" not in record
        assert record["version"] == 1
        # Round-trips through JSON.
        again = RunManifest.from_record(json.loads(canonical_json(record)))
        assert again.run_id == record["run_id"]

    def test_from_record_rejects_bad_versions_and_shapes(self):
        with pytest.raises(ValueError):
            RunManifest.from_record({"version": 2, "run_id": "r", "command": "x"})
        with pytest.raises(ValueError):
            RunManifest.from_record({"version": 1})
        with pytest.raises(ValueError):
            RunManifest.from_record("nope")

    def test_env_fingerprint_shape(self):
        env = env_fingerprint(scale="smoke", seed=3, kernels="naive", workers=2)
        assert env["scale"] == "smoke" and env["seed"] == 3
        assert env["kernels"] == "naive" and env["workers"] == 2
        assert "python" in env and "git_rev" in env
