"""Autograd op profiler: tape hook, dispatch wrappers, clean uninstall."""

import numpy as np
import pytest

from repro.autograd import ops, scatter
from repro.autograd.tensor import Tensor, get_tape_hook, set_tape_hook
from repro.obs import AutogradProfiler, profile_autograd


class FakeClock:
    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


def by_name(profiler):
    return {s["name"]: s for s in profiler.stats()}


class TestDisabledMode:
    def test_no_hook_installed_by_default(self):
        assert get_tape_hook() is None

    def test_ops_are_unwrapped_by_default(self):
        assert not hasattr(ops.matmul, "__obs_wrapped__")
        assert not hasattr(scatter.segment_sum, "__obs_wrapped__")


class TestInstallUninstall:
    def test_install_wraps_and_uninstall_restores_exactly(self):
        originals = {name: getattr(ops, name) for name in ops.__all__}
        profiler = AutogradProfiler()
        profiler.install()
        try:
            assert get_tape_hook() is not None
            assert ops.matmul.__obs_wrapped__
            assert scatter.segment_mean.__obs_wrapped__
        finally:
            profiler.uninstall()
        assert get_tape_hook() is None
        for name, original in originals.items():
            assert getattr(ops, name) is original

    def test_double_install_is_idempotent(self):
        profiler = AutogradProfiler()
        profiler.install()
        try:
            profiler.install()
        finally:
            profiler.uninstall()
        assert get_tape_hook() is None

    def test_second_hook_rejected_while_active(self):
        with profile_autograd():
            with pytest.raises(RuntimeError, match="hook"):
                set_tape_hook(lambda data, parents, backward_fn: backward_fn)

    def test_context_manager_uninstalls_on_error(self):
        with pytest.raises(ValueError):
            with profile_autograd():
                raise ValueError("boom")
        assert get_tape_hook() is None
        assert not hasattr(ops.matmul, "__obs_wrapped__")


class TestStats:
    def test_counts_bytes_and_backward_calls(self):
        a = Tensor(np.ones((4, 3)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        with profile_autograd() as profiler:
            out = ops.matmul(a, b)
            loss = ops.sum(out)
            loss.backward()
        stats = by_name(profiler)
        assert stats["matmul"]["calls"] == 1
        assert stats["matmul"]["tape_entries"] == 1
        assert stats["matmul"]["output_bytes"] == 4 * 2 * 8  # float64
        assert stats["matmul"]["backward_calls"] == 1
        assert stats["sum"]["backward_calls"] == 1

    def test_composite_op_separates_self_from_cumulative(self):
        x = Tensor(np.ones((6, 2)), requires_grad=True)
        ids = np.array([0, 0, 1, 1, 2, 2])
        with profile_autograd() as profiler:
            scatter.gather(x, ids)
        stats = by_name(profiler)
        # gather dispatches getitem internally, so the nested time is
        # attributed to getitem and excluded from the parent's self
        # time.
        assert stats["getitem"]["calls"] == 1
        outer = stats["gather"]
        assert outer["calls"] == 1
        assert outer["forward_cum"] > outer["forward_self"]

    def test_deterministic_timing_with_injected_clock(self):
        a = Tensor(np.ones(3), requires_grad=True)
        profiler = AutogradProfiler(clock=FakeClock())
        profiler.install()
        try:
            out = ops.mul(a, a)
            ops.sum(out).backward()
        finally:
            profiler.uninstall()
        stats = by_name(profiler)
        # Every wrapper does exactly two clock reads (start/end) and the
        # FakeClock advances 1s per read, so each timed region is >= 1s
        # and an exact multiple of the step.
        assert stats["mul"]["forward_cum"] >= 1.0
        assert stats["mul"]["forward_cum"] == int(stats["mul"]["forward_cum"])
        assert stats["mul"]["backward_time"] >= 1.0

    def test_stats_sorted_by_self_plus_backward(self):
        profiler = AutogradProfiler()
        profiler.stat("slow").forward_self = 5.0
        profiler.stat("fast").forward_self = 1.0
        profiler.stat("medium").backward_time = 3.0
        names = [s["name"] for s in profiler.stats()]
        assert names == ["slow", "medium", "fast"]

    def test_stats_survive_uninstall(self):
        a = Tensor(np.ones(2), requires_grad=True)
        with profile_autograd() as profiler:
            ops.sum(a)
        assert by_name(profiler)["sum"]["calls"] == 1
