"""JSONL trace round-trip and sink behaviour."""

import json

import pytest

from repro.obs import (
    InMemorySink,
    JsonlSink,
    MetricsRegistry,
    TRACE_VERSION,
    Tracer,
    read_trace,
)


def traced(tracer):
    with tracer.span("search", kind="search", dataset="cora"):
        with tracer.span("epoch", index=0):
            pass
        with tracer.span("epoch", index=1):
            pass


class TestInMemorySink:
    def test_records_and_clears(self):
        tracer = Tracer()
        sink = InMemorySink()
        tracer.add_sink(sink)
        traced(tracer)
        assert len(sink) == 3
        assert all(r["type"] == "span" for r in sink.records())
        sink.clear()
        assert len(sink) == 0


class TestJsonlRoundTrip:
    def test_trace_file_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer()
        with JsonlSink(path, meta={"label": "unit"}) as sink:
            tracer.add_sink(sink)
            traced(tracer)
            registry = MetricsRegistry()
            registry.counter("epochs").inc(2)
            sink.write_metrics(registry)
            sink.write_op_stats([{"name": "matmul", "calls": 4}])
            tracer.remove_sink(sink)

        records = read_trace(path)
        header = records[0]
        assert header["type"] == "trace-meta"
        assert header["version"] == TRACE_VERSION
        assert header["label"] == "unit"

        spans = [r for r in records if r["type"] == "span"]
        assert [s["name"] for s in spans] == ["epoch", "epoch", "search"]
        root = spans[-1]
        assert root["parent"] is None
        assert all(s["parent"] == root["id"] for s in spans[:-1])
        assert spans[0]["attrs"] == {"index": 0}

        metrics = [r for r in records if r["type"] == "metrics"]
        assert metrics[0]["data"]["counters"]["epochs"]["value"] == 2.0
        op_stats = [r for r in records if r["type"] == "op_stats"]
        assert op_stats[0]["data"] == [{"name": "matmul", "calls": 4}]

    def test_every_line_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer()
        with JsonlSink(path) as sink:
            tracer.add_sink(sink)
            traced(tracer)
            tracer.remove_sink(sink)
        for line in path.read_text().splitlines():
            json.loads(line)


class TestReadTraceValidation:
    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "span", "id": 0}\n')
        with pytest.raises(ValueError, match="trace-meta"):
            read_trace(path)

    def test_invalid_json_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "trace-meta", "version": 1}\nnot json\n')
        with pytest.raises(ValueError, match="invalid trace line"):
            read_trace(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError):
            read_trace(path)
