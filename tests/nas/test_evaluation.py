"""Candidate evaluation loop, trajectories and weight sharing."""

import numpy as np
import pytest

from repro.core.search_space import SearchSpace
from repro.nas.encoding import (
    graphnas_decision_space,
    mlp_decision_space,
    sane_decision_space,
)
from repro.nas.evaluation import ArchitectureEvaluator, build_spec_model
from repro.train.trainer import TrainConfig

SPACE = sane_decision_space(
    SearchSpace(num_layers=2, node_ops=("gcn", "gat"), layer_ops=("concat", "max"))
)
FAST = TrainConfig(epochs=8, patience=8)


def make_evaluator(data, **kwargs):
    defaults = dict(train_config=FAST, hidden_dim=8, seed=0)
    defaults.update(kwargs)
    return ArchitectureEvaluator(SPACE, data, **defaults)


class TestEvaluate:
    def test_record_fields(self, tiny_graph):
        evaluator = make_evaluator(tiny_graph)
        indices = SPACE.sample_indices(np.random.default_rng(0))
        record = evaluator.evaluate(indices)
        assert record.indices == tuple(indices)
        assert 0.0 <= record.val_score <= 1.0
        assert record.elapsed > 0

    def test_records_accumulate(self, tiny_graph):
        evaluator = make_evaluator(tiny_graph)
        rng = np.random.default_rng(0)
        for __ in range(3):
            evaluator.evaluate(SPACE.sample_indices(rng))
        assert len(evaluator.records) == 3
        elapsed = [r.elapsed for r in evaluator.records]
        assert elapsed == sorted(elapsed)

    def test_best_record(self, tiny_graph):
        evaluator = make_evaluator(tiny_graph)
        rng = np.random.default_rng(0)
        for __ in range(3):
            evaluator.evaluate(SPACE.sample_indices(rng))
        best = evaluator.best_record
        assert best.val_score == max(r.val_score for r in evaluator.records)

    def test_best_record_before_any_raises(self, tiny_graph):
        with pytest.raises(RuntimeError, match="no candidates"):
            make_evaluator(tiny_graph).best_record

    def test_trajectory_is_best_so_far(self, tiny_graph):
        evaluator = make_evaluator(tiny_graph)
        rng = np.random.default_rng(0)
        for __ in range(4):
            evaluator.evaluate(SPACE.sample_indices(rng))
        scores = [s for __, s in evaluator.trajectory()]
        assert scores == sorted(scores) or all(
            scores[i] <= scores[i + 1] + 1e-12 for i in range(len(scores) - 1)
        )

    def test_graphnas_space_models(self, tiny_graph):
        space = graphnas_decision_space(2)
        evaluator = ArchitectureEvaluator(
            space, tiny_graph, train_config=FAST, seed=0
        )
        record = evaluator.evaluate(space.sample_indices(np.random.default_rng(0)))
        assert 0.0 <= record.val_score <= 1.0

    def test_mlp_space_models(self, tiny_graph):
        space = mlp_decision_space(2)
        evaluator = ArchitectureEvaluator(
            space, tiny_graph, train_config=FAST, hidden_dim=8, seed=0
        )
        record = evaluator.evaluate(space.sample_indices(np.random.default_rng(0)))
        assert 0.0 <= record.val_score <= 1.0


class TestWeightSharing:
    def test_bank_persists_and_is_reused(self, tiny_graph):
        evaluator = make_evaluator(tiny_graph, weight_sharing=True, ws_epochs=3)
        indices = SPACE.sample_indices(np.random.default_rng(0))
        evaluator.evaluate(indices)
        bank_after_first = {k: v.copy() for k, v in evaluator._bank.items()}
        assert bank_after_first  # something was stored

        # Re-evaluating the same candidate starts from the banked weights
        # and trains further, so the bank entries change.
        evaluator.evaluate(indices)
        changed = any(
            not np.allclose(bank_after_first[k], evaluator._bank[k])
            for k in bank_after_first
        )
        assert changed

    def test_ws_uses_short_schedule(self, tiny_graph):
        evaluator = make_evaluator(tiny_graph, weight_sharing=True, ws_epochs=2)
        indices = SPACE.sample_indices(np.random.default_rng(0))
        record = evaluator.evaluate(indices)
        assert record.elapsed < 30  # sanity: short schedule


class TestBuildSpecModel:
    def test_per_layer_settings_applied(self, tiny_graph, rng):
        spec = {
            "node_aggregators": ["gcn", "gat"],
            "activations": ["relu", "tanh"],
            "heads": [1, 2],
            "hidden_dims": [8, 6],
        }
        model = build_spec_model(
            spec, tiny_graph.num_features, tiny_graph.num_classes, rng
        )
        assert model.classifier.in_features == 6
