"""Random search, TPE and the GraphNAS controller."""

import numpy as np
import pytest

from repro.core.search_space import SearchSpace
from repro.nas.encoding import Decision, DecisionSpace, sane_decision_space
from repro.nas.evaluation import ArchitectureEvaluator
from repro.nas.graphnas import Controller, graphnas_search
from repro.nas.random_search import random_search
from repro.nas.tpe import TPESampler, tpe_search
from repro.train.trainer import TrainConfig

SPACE = sane_decision_space(
    SearchSpace(num_layers=2, node_ops=("gcn", "gat"), layer_ops=("concat",))
)
FAST = TrainConfig(epochs=6, patience=6)


def make_evaluator(data, **kwargs):
    defaults = dict(train_config=FAST, hidden_dim=8, seed=0)
    defaults.update(kwargs)
    return ArchitectureEvaluator(SPACE, data, **defaults)


def toy_space():
    """A synthetic objective space: score = a + 10*b, best at (2, 2)."""
    decisions = [Decision("a", (0, 1, 2)), Decision("b", (0, 1, 2))]
    return DecisionSpace(decisions, decoder=lambda d: d, name="toy")


class TestRandomSearch:
    def test_outcome_fields(self, tiny_graph):
        outcome = random_search(make_evaluator(tiny_graph), 3, seed=0)
        assert len(outcome.records) == 3
        assert outcome.search_time > 0
        assert outcome.best in outcome.records

    def test_deduplication_in_small_space(self, tiny_graph):
        outcome = random_search(make_evaluator(tiny_graph), 5, seed=0)
        indices = [r.indices for r in outcome.records]
        assert len(set(indices)) == len(indices)

    def test_decode_of_best(self, tiny_graph):
        outcome = random_search(make_evaluator(tiny_graph), 2, seed=0)
        arch = outcome.decode(SPACE)
        assert arch.num_layers == 2


class TestTPESampler:
    def test_startup_is_random(self):
        sampler = TPESampler(toy_space(), np.random.default_rng(0), num_startup=3)
        proposal = sampler.propose()
        assert len(proposal) == 2

    def test_proposals_concentrate_on_good_region(self):
        space = toy_space()
        rng = np.random.default_rng(0)
        sampler = TPESampler(space, rng, num_startup=5, gamma=0.3)
        # Feed it the full truth: score = a + 10*b.
        for a in range(3):
            for b in range(3):
                sampler.observe((a, b), a + 10 * b)
        proposals = [sampler.propose() for __ in range(30)]
        mean_b = np.mean([p[1] for p in proposals])
        assert mean_b > 1.0  # biased towards b = 2

    def test_gamma_validated(self):
        with pytest.raises(ValueError, match="gamma"):
            TPESampler(toy_space(), np.random.default_rng(0), gamma=0.0)

    def test_beats_random_on_toy_objective(self):
        """TPE should find the optimum faster than pure random."""
        space = toy_space()

        def run(sampler_like, seed):
            rng = np.random.default_rng(seed)
            best = -1
            found_at = None
            sampler = TPESampler(space, rng, num_startup=3)
            for step in range(15):
                indices = sampler.propose()
                score = indices[0] + 10 * indices[1]
                sampler.observe(indices, score)
                if score > best:
                    best = score
                    if score == 22:
                        found_at = step
            return best

        bests = [run(None, s) for s in range(5)]
        assert np.mean(bests) >= 20  # near-optimal consistently


class TestTPESearch:
    def test_runs_and_returns_best(self, tiny_graph):
        outcome = tpe_search(make_evaluator(tiny_graph), 4, seed=0)
        assert len(outcome.records) == 4
        assert outcome.best.val_score == max(r.val_score for r in outcome.records)


class TestController:
    def test_sample_valid_indices(self):
        controller = Controller(SPACE, np.random.default_rng(0))
        indices, log_prob, entropy = controller.sample(np.random.default_rng(1))
        assert len(indices) == len(SPACE)
        for position, index in enumerate(indices):
            assert 0 <= index < SPACE.num_choices(position)
        assert log_prob.item() <= 0.0
        assert entropy.item() >= 0.0

    def test_log_prob_is_differentiable(self):
        controller = Controller(SPACE, np.random.default_rng(0))
        __, log_prob, __e = controller.sample(np.random.default_rng(1))
        log_prob.backward()
        grads = [p.grad for p in controller.parameters()]
        assert any(g is not None and np.abs(g).sum() > 0 for g in grads)

    def test_reinforce_shifts_policy_toward_reward(self):
        """Rewarding one fixed decision vector raises its probability."""
        space = toy_space()
        controller = Controller(space, np.random.default_rng(0))
        from repro.nn.optim import Adam

        optimizer = Adam(controller.parameters(), lr=0.05)
        target = (2, 2)
        rng = np.random.default_rng(1)

        def probability_of_target():
            counter = 0
            probe_rng = np.random.default_rng(123)
            for __ in range(200):
                indices, __lp, __en = controller.sample(probe_rng)
                if indices == target:
                    counter += 1
            return counter / 200

        before = probability_of_target()
        for __ in range(60):
            indices, log_prob, entropy = controller.sample(rng)
            reward = 1.0 if indices == target else 0.0
            controller.zero_grad()
            loss = -(log_prob * (reward - 0.1))
            loss.backward()
            optimizer.step()
        after = probability_of_target()
        assert after > before


class TestGraphNASSearch:
    def test_outcome(self, tiny_graph):
        outcome = graphnas_search(
            make_evaluator(tiny_graph), 3, seed=0, num_final_samples=2
        )
        assert outcome.best.val_score >= 0.0
        assert len(outcome.records) >= 3

    def test_weight_sharing_variant(self, tiny_graph):
        evaluator = make_evaluator(tiny_graph, weight_sharing=True, ws_epochs=3)
        outcome = graphnas_search(evaluator, 3, seed=0, num_final_samples=1)
        assert outcome.best is not None
