"""Hyper-parameter fine-tuning (hyperopt stand-in)."""

import numpy as np
import pytest

from repro.core.search_space import Architecture
from repro.nas.encoding import Decision, DecisionSpace
from repro.nas.tuner import hyperparameter_space, tune, tune_architecture
from repro.train.trainer import TrainConfig


class TestHyperparameterSpace:
    def test_contains_table12_dimensions(self):
        space = hyperparameter_space()
        names = {d.name for d in space.decisions}
        assert names == {
            "hidden_dim",
            "heads",
            "lr",
            "weight_decay",
            "dropout",
            "activation",
        }

    def test_custom_choices(self):
        space = hyperparameter_space(hidden_choices=(8,), head_choices=(1,))
        decoded = space.decode(tuple(0 for __ in space.decisions))
        assert decoded["hidden_dim"] == 8


class TestTune:
    def test_finds_maximum_of_toy_objective(self):
        space = DecisionSpace(
            [Decision("x", (0.0, 1.0, 2.0, 3.0))],
            decoder=lambda d: d,
            name="toy",
        )
        result = tune(lambda a: -((a["x"] - 2.0) ** 2), space, num_trials=12, seed=0)
        assert result.best_assignment["x"] == 2.0
        assert len(result.trials) == 12

    def test_requires_positive_trials(self):
        space = DecisionSpace([Decision("x", (1,))], decoder=lambda d: d, name="t")
        with pytest.raises(ValueError, match="num_trials"):
            tune(lambda a: 0.0, space, num_trials=0)

    def test_best_score_is_max_of_trials(self):
        space = DecisionSpace(
            [Decision("x", (1, 2, 3))], decoder=lambda d: d, name="t"
        )
        result = tune(lambda a: float(a["x"]), space, num_trials=6, seed=1)
        assert result.best_score == max(score for __, score in result.trials)


class TestTuneArchitecture:
    def test_runs_on_tiny_graph(self, tiny_graph):
        arch = Architecture(("gcn", "gcn"), ("identity", "identity"), "concat")
        space = hyperparameter_space(hidden_choices=(8,), head_choices=(1,))
        result = tune_architecture(
            arch,
            tiny_graph,
            num_trials=2,
            seed=0,
            train_config=TrainConfig(epochs=8, patience=8),
            space=space,
        )
        assert 0.0 <= result.best_score <= 1.0
        assert result.best_assignment["hidden_dim"] == 8
