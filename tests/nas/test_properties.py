"""Hypothesis property tests for NAS encodings and samplers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.search_space import Architecture, SearchSpace
from repro.nas.encoding import sane_decision_space
from repro.nas.evolution import mutate
from repro.nas.tpe import TPESampler


def spaces():
    node_subsets = st.lists(
        st.sampled_from(["gcn", "gat", "gin", "sage-mean", "sage-max"]),
        min_size=2,
        max_size=4,
        unique=True,
    )
    return st.builds(
        lambda layers, nodes: SearchSpace(num_layers=layers, node_ops=tuple(nodes)),
        st.integers(1, 4),
        node_subsets,
    )


@given(spaces(), st.integers(0, 100))
@settings(max_examples=30, deadline=None)
def test_encode_decode_roundtrip(space, seed):
    dspace = sane_decision_space(space)
    rng = np.random.default_rng(seed)
    indices = dspace.sample_indices(rng)
    arch = dspace.decode(indices)
    assert isinstance(arch, Architecture)
    assert space.contains(arch)


@given(spaces())
@settings(max_examples=30, deadline=None)
def test_decision_space_size_matches_search_space(space):
    assert sane_decision_space(space).size() == space.size()


@given(spaces(), st.integers(0, 50))
@settings(max_examples=30, deadline=None)
def test_mutation_stays_in_space(space, seed):
    dspace = sane_decision_space(space)
    rng = np.random.default_rng(seed)
    indices = dspace.sample_indices(rng)
    for __ in range(5):
        indices = mutate(indices, dspace, rng)
        arch = dspace.decode(indices)
        assert space.contains(arch)


@given(spaces(), st.integers(0, 20), st.integers(1, 8))
@settings(max_examples=20, deadline=None)
def test_tpe_proposals_always_valid(space, seed, observations):
    dspace = sane_decision_space(space)
    rng = np.random.default_rng(seed)
    sampler = TPESampler(dspace, rng, num_startup=2)
    for i in range(observations):
        indices = dspace.sample_indices(rng)
        sampler.observe(indices, float(i % 3))
    proposal = sampler.propose()
    for position, index in enumerate(proposal):
        assert 0 <= index < dspace.num_choices(position)
