"""Aging-evolution NAS baseline."""

import numpy as np
import pytest

from repro.core.search_space import SearchSpace
from repro.nas.encoding import sane_decision_space
from repro.nas.evaluation import ArchitectureEvaluator
from repro.nas.evolution import evolutionary_search, mutate
from repro.train.trainer import TrainConfig

SPACE = sane_decision_space(
    SearchSpace(num_layers=2, node_ops=("gcn", "gat"), layer_ops=("concat",))
)


class TestMutate:
    def test_changes_exactly_one_position(self):
        rng = np.random.default_rng(0)
        parent = SPACE.sample_indices(rng)
        for __ in range(20):
            child = mutate(parent, SPACE, rng)
            diffs = sum(a != b for a, b in zip(parent, child))
            assert diffs == 1

    def test_child_stays_in_range(self):
        rng = np.random.default_rng(1)
        parent = SPACE.sample_indices(rng)
        for __ in range(20):
            child = mutate(parent, SPACE, rng)
            for position, index in enumerate(child):
                assert 0 <= index < SPACE.num_choices(position)


class TestEvolutionarySearch:
    def make_evaluator(self, data):
        return ArchitectureEvaluator(
            SPACE, data, train_config=TrainConfig(epochs=6, patience=6),
            hidden_dim=8, seed=0,
        )

    def test_budget_respected(self, tiny_graph):
        outcome = evolutionary_search(
            self.make_evaluator(tiny_graph), 6, seed=0, population_size=3
        )
        assert len(outcome.records) == 6

    def test_budget_below_population(self, tiny_graph):
        outcome = evolutionary_search(
            self.make_evaluator(tiny_graph), 2, seed=0, population_size=8
        )
        assert len(outcome.records) == 2

    def test_population_size_validated(self, tiny_graph):
        with pytest.raises(ValueError, match="population_size"):
            evolutionary_search(self.make_evaluator(tiny_graph), 4, population_size=1)

    def test_children_are_mutations_of_population(self, tiny_graph):
        outcome = evolutionary_search(
            self.make_evaluator(tiny_graph), 6, seed=0,
            population_size=3, tournament_size=2,
        )
        seeds = [r.indices for r in outcome.records[:3]]
        alive = list(seeds)
        for child in outcome.records[3:]:
            assert any(
                sum(a != b for a, b in zip(parent, child.indices)) == 1
                for parent in alive
            )
            alive.append(child.indices)
            alive.pop(0)

    def test_best_is_max_val(self, tiny_graph):
        outcome = evolutionary_search(self.make_evaluator(tiny_graph), 5, seed=0)
        assert outcome.best.val_score == max(r.val_score for r in outcome.records)
