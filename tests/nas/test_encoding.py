"""Decision-space encodings for the trial-and-error searchers."""

import numpy as np
import pytest

from repro.core.search_space import Architecture, SearchSpace
from repro.nas.encoding import (
    Decision,
    DecisionSpace,
    graphnas_decision_space,
    mlp_decision_space,
    sane_decision_space,
)


class TestDecision:
    def test_rejects_empty_choices(self):
        with pytest.raises(ValueError, match="no choices"):
            Decision("x", ())


class TestDecisionSpace:
    def space(self):
        decisions = [Decision("a", (1, 2)), Decision("b", ("x", "y", "z"))]
        return DecisionSpace(decisions, decoder=lambda d: d, name="toy")

    def test_len_and_size(self):
        space = self.space()
        assert len(space) == 2
        assert space.size() == 6
        assert space.num_choices(1) == 3

    def test_sample_in_range(self):
        space = self.space()
        rng = np.random.default_rng(0)
        for __ in range(20):
            indices = space.sample_indices(rng)
            assert all(0 <= i < space.num_choices(pos) for pos, i in enumerate(indices))

    def test_decode(self):
        assert self.space().decode((1, 2)) == {"a": 2, "b": "z"}

    def test_decode_length_checked(self):
        with pytest.raises(ValueError, match="expected 2"):
            self.space().decode((1,))

    def test_describe(self):
        assert self.space().describe((0, 1)) == "a=1, b=y"

    def test_requires_decisions(self):
        with pytest.raises(ValueError, match="at least one"):
            DecisionSpace([], decoder=lambda d: d, name="empty")


class TestSaneEncoding:
    def test_size_matches_search_space(self):
        space = SearchSpace(num_layers=3)
        assert sane_decision_space(space).size() == space.size() == 31_944

    def test_decodes_to_architecture(self):
        space = SearchSpace(num_layers=2)
        dspace = sane_decision_space(space)
        arch = dspace.decode(dspace.sample_indices(np.random.default_rng(0)))
        assert isinstance(arch, Architecture)
        assert space.contains(arch)

    def test_decision_count(self):
        assert len(sane_decision_space(SearchSpace(num_layers=3))) == 7  # 2K+1


class TestGraphNASEncoding:
    def test_much_larger_than_sane(self):
        """Section III-C: the mixed space is orders of magnitude bigger."""
        graphnas = graphnas_decision_space(3).size()
        sane = sane_decision_space(SearchSpace(num_layers=3)).size()
        assert graphnas > 1000 * sane

    def test_decodes_to_spec(self):
        space = graphnas_decision_space(2)
        spec = space.decode(space.sample_indices(np.random.default_rng(0)))
        assert set(spec) == {"node_aggregators", "activations", "heads", "hidden_dims"}
        assert len(spec["node_aggregators"]) == 2


class TestMLPEncoding:
    def test_size(self):
        assert mlp_decision_space(3).size() == 12**3

    def test_decodes_to_layer_specs(self):
        space = mlp_decision_space(2)
        spec = space.decode(space.sample_indices(np.random.default_rng(0)))
        assert len(spec["mlp_layers"]) == 2
        width, depth = spec["mlp_layers"][0]
        assert width in (8, 16, 32, 64)
        assert depth in (1, 2, 3)
