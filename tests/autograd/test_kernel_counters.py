"""Per-kernel bytes-moved counters (PR 5): recording, derived bandwidth,
no-double-counting, and the off-mode guarantee."""

import numpy as np
import pytest

from repro.autograd import kernels
from repro.autograd.kernels import (
    BACKENDS,
    KernelCounters,
    count_kernels,
    get_kernel_counters,
    index_add,
    scatter_max,
    scatter_sum,
    set_kernel_counters,
)


class FakeClock:
    def __init__(self, step: float = 0.5):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


@pytest.fixture(params=BACKENDS)
def backend(request):
    with kernels.use_backend(request.param):
        yield request.param


class TestRecording:
    def test_all_three_kernels_are_counted(self, backend):
        values = np.arange(12.0).reshape(6, 2)
        ids = np.array([0, 0, 1, 1, 2, 2])
        out = np.zeros((3, 2))
        with count_kernels() as counters:
            scatter_sum(values, ids, 3)
            scatter_max(values, ids, 3)
            index_add(out, np.array([0, 1, 1]), np.ones((3, 2)))
        snapshot = counters.snapshot()
        assert set(snapshot) == {"scatter_sum", "scatter_max", "index_add"}
        for entry in snapshot.values():
            assert entry["calls"] == 1
            assert entry["bytes_read"] > 0
            assert entry["bytes_written"] > 0
            assert entry["elements_reduced"] > 0
            assert entry["bytes_moved"] == (
                entry["bytes_read"] + entry["bytes_written"]
            )
            assert entry["effective_gbps"] is None  # no clock injected

    def test_counted_run_matches_uncounted(self, backend):
        values = np.arange(12.0).reshape(6, 2)
        ids = np.array([0, 1, 0, 1, 2, 2])
        plain = scatter_sum(values, ids, 3)
        with count_kernels():
            counted = scatter_sum(values, ids, 3)
        np.testing.assert_array_equal(plain, counted)

    def test_naive_scatter_sum_does_not_double_count_index_add(self):
        values = np.ones((4, 2))
        ids = np.array([0, 1, 0, 1])
        with kernels.use_backend("naive"):
            with count_kernels() as counters:
                scatter_sum(values, ids, 2)
        # The naive kernel delegates to the index_add *impl*, below the
        # counting layer: only the entry point is recorded.
        assert set(counters.snapshot()) == {"scatter_sum"}

    def test_bytes_scale_with_workload(self, backend):
        ids = np.array([0, 1] * 8)
        small = KernelCounters()
        big = KernelCounters()
        with count_kernels(small):
            scatter_sum(np.ones((16, 2)), ids, 2)
        with count_kernels(big):
            scatter_sum(np.ones((16, 8)), ids, 2)
        assert (
            big.snapshot()["scatter_sum"]["bytes_moved"]
            > small.snapshot()["scatter_sum"]["bytes_moved"]
        )


class TestBandwidth:
    def test_injected_clock_yields_effective_gbps(self, backend):
        counters = KernelCounters(clock=FakeClock(step=0.5))
        with count_kernels(counters):
            scatter_sum(np.ones((8, 4)), np.zeros(8, dtype=np.int64), 1)
        entry = counters.snapshot()["scatter_sum"]
        assert entry["seconds"] == pytest.approx(0.5)
        assert entry["effective_gbps"] == pytest.approx(
            entry["bytes_moved"] / 0.5 / 1e9
        )

    def test_manual_record_accumulates(self):
        counters = KernelCounters()
        counters.record("k", bytes_read=10, bytes_written=5, elements=3)
        counters.record("k", bytes_read=10, bytes_written=5, elements=3, seconds=2.0)
        entry = counters.snapshot()["k"]
        assert entry["calls"] == 2
        assert entry["bytes_moved"] == 30
        assert entry["effective_gbps"] == pytest.approx(30 / 2.0 / 1e9)


class TestInstallation:
    def test_off_mode_records_nothing(self):
        assert get_kernel_counters() is None
        scatter_sum(np.ones((2, 2)), np.array([0, 1]), 2)
        assert get_kernel_counters() is None

    def test_context_restores_off_state(self):
        with count_kernels() as counters:
            assert get_kernel_counters() is counters
        assert get_kernel_counters() is None

    def test_conflicting_collectors_raise(self):
        first = KernelCounters()
        set_kernel_counters(first)
        try:
            with pytest.raises(RuntimeError, match="already installed"):
                set_kernel_counters(KernelCounters())
            set_kernel_counters(first)  # re-setting the same one is fine
        finally:
            set_kernel_counters(None)
        assert get_kernel_counters() is None
