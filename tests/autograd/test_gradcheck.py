"""Registry-driven gradcheck: every registered op, both kernel backends.

``tests/autograd/test_ops.py`` and friends verify hand-picked gradients;
this harness closes the coverage gap the static VJP analysis
(``repro check``) cannot: it *executes* every differentiable op exported
by ``repro.autograd.{ops,functional,scatter}`` against central
finite differences, under both ``REPRO_KERNELS`` backends, and a
companion test asserts the registry stays exhaustive — adding an op to
``__all__`` without a gradcheck case fails the suite.

Each registry entry is a list of cases; a case perturbs exactly one
differentiable input (closing over the others) and reduces the op's
output to a scalar through a fixed random projection so every output
element influences the loss with a distinct weight — a plain ``sum``
would miss gradients that are wrong by a permutation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, ops
from repro.autograd import functional as F
from repro.autograd import kernels, scatter
from tests.helpers import check_gradient

RNG = np.random.default_rng(1234)

# Fixed operands, chosen away from kinks/ties so finite differences are
# valid: MATRIX has no zeros or duplicated values within a row/segment.
MATRIX = RNG.normal(size=(4, 3)) + np.linspace(0.0, 0.7, 12).reshape(4, 3)
OTHER = RNG.normal(size=(4, 3)) + 0.15
POSITIVE = np.abs(RNG.normal(size=(4, 3))) + 0.5
VECTOR = RNG.normal(size=(5,)) + np.linspace(0.0, 0.4, 5)
GATES = RNG.normal(size=(3, 8)) * 0.7
C_PREV = RNG.normal(size=(3, 2))
COND = RNG.random(size=(4, 3)) > 0.5
ROW_INDEX = np.array([0, 2, 1, 2, 3], dtype=np.int64)
SEGMENT_IDS = np.array([0, 0, 1, 3, 3], dtype=np.int64)
EDGE_VALUES = RNG.normal(size=(5, 3)) + np.linspace(0.0, 0.9, 15).reshape(5, 3)
EDGE_WEIGHTS = np.abs(RNG.normal(size=(5,))) + 0.3
NUM_SEGMENTS = 4

# Per-output-shape random projections (fixed across calls).
_PROJECTIONS: dict[tuple, np.ndarray] = {}


def _project(value: Tensor) -> Tensor:
    """Scalar loss: inner product with a fixed random projection."""
    shape = tuple(value.shape)
    proj = _PROJECTIONS.get(shape)
    if proj is None:
        proj = np.random.default_rng(hash(shape) % (2**32)).normal(size=shape)
        _PROJECTIONS[shape] = proj
    return ops.sum(value * Tensor(proj))


def _case(builder):
    """One gradcheck case: perturb ``data`` through ``builder``."""

    def run(data):
        check_gradient(lambda t: _project(builder(t)), data)

    return run


# name -> [(input array, op builder taking the perturbed tensor)]
OPS_CASES = {
    "add": [(MATRIX, lambda t: ops.add(t, OTHER)), (OTHER, lambda t: ops.add(MATRIX, t))],
    "sub": [(MATRIX, lambda t: ops.sub(t, OTHER)), (OTHER, lambda t: ops.sub(MATRIX, t))],
    "mul": [(MATRIX, lambda t: ops.mul(t, OTHER)), (OTHER, lambda t: ops.mul(MATRIX, t))],
    "div": [
        (MATRIX, lambda t: ops.div(t, POSITIVE)),
        (POSITIVE, lambda t: ops.div(MATRIX, t)),
    ],
    "neg": [(MATRIX, ops.neg)],
    "pow": [(POSITIVE, lambda t: ops.pow(t, 3.0))],
    "exp": [(MATRIX, ops.exp)],
    "log": [(POSITIVE, ops.log)],
    "sqrt": [(POSITIVE, ops.sqrt)],
    "tanh": [(MATRIX, ops.tanh)],
    "sigmoid": [(MATRIX, ops.sigmoid)],
    "softplus": [(MATRIX, ops.softplus)],
    "abs": [(MATRIX + 0.1, ops.abs)],
    "maximum": [
        (MATRIX, lambda t: ops.maximum(t, OTHER)),
        (OTHER + 0.05, lambda t: ops.maximum(MATRIX, t)),
    ],
    "clip": [(MATRIX * 2.0, lambda t: ops.clip(t, -1.1, 1.1))],
    "matmul": [
        (MATRIX, lambda t: ops.matmul(t, OTHER.T)),
        (OTHER.T.copy(), lambda t: ops.matmul(MATRIX, t)),
    ],
    "linear": [
        (MATRIX, lambda t: ops.linear(t, OTHER.T, VECTOR[:4])),
        (OTHER.T.copy(), lambda t: ops.linear(MATRIX, t, VECTOR[:4])),
        (VECTOR[:4].copy(), lambda t: ops.linear(MATRIX, OTHER.T, t)),
    ],
    "sum": [
        (MATRIX, ops.sum),
        (MATRIX, lambda t: ops.sum(t, axis=0)),
        (MATRIX, lambda t: ops.sum(t, axis=1, keepdims=True)),
    ],
    "mean": [(MATRIX, ops.mean), (MATRIX, lambda t: ops.mean(t, axis=1))],
    "max": [
        (MATRIX, ops.max),
        (MATRIX, lambda t: ops.max(t, axis=0)),
        (MATRIX, lambda t: ops.max(t, axis=1, keepdims=True)),
    ],
    "reshape": [(MATRIX, lambda t: ops.reshape(t, (2, 6)))],
    "transpose": [
        (MATRIX, ops.transpose),
        (MATRIX, lambda t: ops.transpose(t, (1, 0))),
    ],
    "getitem": [
        (MATRIX, lambda t: ops.getitem(t, ROW_INDEX[:4])),  # row gather
        (MATRIX, lambda t: ops.getitem(t, (slice(1, 3), slice(0, 2)))),
    ],
    "concatenate": [
        (MATRIX, lambda t: ops.concatenate([t, Tensor(OTHER)], axis=0)),
        (OTHER, lambda t: ops.concatenate([Tensor(MATRIX), t], axis=1)),
    ],
    "stack": [
        (MATRIX, lambda t: ops.stack([t, Tensor(OTHER)], axis=0)),
        (OTHER, lambda t: ops.stack([Tensor(MATRIX), t], axis=1)),
    ],
    "where": [
        (MATRIX, lambda t: ops.where(COND, t, Tensor(OTHER))),
        (OTHER, lambda t: ops.where(COND, Tensor(MATRIX), t)),
    ],
    "weighted_sum": [
        (MATRIX, lambda t: ops.weighted_sum([t, Tensor(OTHER)], Tensor(VECTOR[:2]))),
        (
            VECTOR[:2].copy(),
            lambda t: ops.weighted_sum([Tensor(MATRIX), Tensor(OTHER)], t),
        ),
    ],
}

_TARGETS = np.array([0, 2, 1, 2], dtype=np.int64)
_BINARY = (RNG.random(size=(4, 3)) > 0.4).astype(np.float64)

FUNCTIONAL_CASES = {
    "relu": [(MATRIX + 0.1, F.relu)],
    "leaky_relu": [(MATRIX + 0.1, lambda t: F.leaky_relu(t, 0.2))],
    "elu": [(MATRIX + 0.1, lambda t: F.elu(t, alpha=1.0))],
    "tanh": [(MATRIX, F.tanh)],
    "sigmoid": [(MATRIX, F.sigmoid)],
    "softmax": [(MATRIX, lambda t: F.softmax(t, axis=-1))],
    "log_softmax": [(MATRIX, lambda t: F.log_softmax(t, axis=-1))],
    # A fresh same-seed generator per call keeps the mask identical
    # across the finite-difference evaluations.
    "dropout": [
        (MATRIX, lambda t: F.dropout(t, 0.4, True, np.random.default_rng(3))),
        (MATRIX, lambda t: F.dropout(t, 0.4, False, np.random.default_rng(3))),
    ],
    "lstm_gate_update": [
        (GATES, lambda t: _lstm_loss(t, Tensor(C_PREV))),
        (C_PREV, lambda t: _lstm_loss(Tensor(GATES), t)),
    ],
    "nll_loss": [
        (MATRIX, lambda t: F.nll_loss(F.log_softmax(t), _TARGETS)),
        (MATRIX, lambda t: F.nll_loss(F.log_softmax(t), _TARGETS, reduction="sum")),
    ],
    "cross_entropy": [(MATRIX, lambda t: F.cross_entropy(t, _TARGETS))],
    "binary_cross_entropy_with_logits": [
        (MATRIX, lambda t: F.binary_cross_entropy_with_logits(t, Tensor(_BINARY))),
    ],
    "mse_loss": [
        (MATRIX, lambda t: F.mse_loss(t, Tensor(OTHER))),
        (OTHER, lambda t: F.mse_loss(Tensor(MATRIX), t)),
    ],
}


def _lstm_loss(gates, c_prev):
    h_new, c_new = F.lstm_gate_update(gates, c_prev)
    return _project(h_new) + _project(c_new)


SCATTER_CASES = {
    "gather": [(MATRIX, lambda t: scatter.gather(t, ROW_INDEX))],
    "segment_sum": [
        (EDGE_VALUES, lambda t: scatter.segment_sum(t, SEGMENT_IDS, NUM_SEGMENTS)),
        (EDGE_WEIGHTS, lambda t: scatter.segment_sum(t, SEGMENT_IDS, NUM_SEGMENTS)),
    ],
    "segment_mean": [
        (EDGE_VALUES, lambda t: scatter.segment_mean(t, SEGMENT_IDS, NUM_SEGMENTS)),
    ],
    "segment_max": [
        (EDGE_VALUES, lambda t: scatter.segment_max(t, SEGMENT_IDS, NUM_SEGMENTS)),
        (EDGE_WEIGHTS, lambda t: scatter.segment_max(t, SEGMENT_IDS, NUM_SEGMENTS)),
    ],
    "segment_softmax": [
        (EDGE_WEIGHTS, lambda t: scatter.segment_softmax(t, SEGMENT_IDS, NUM_SEGMENTS)),
    ],
    "segment_attention_sum": [
        (
            MATRIX,
            lambda t: scatter.segment_attention_sum(
                t, Tensor(EDGE_WEIGHTS), ROW_INDEX, SEGMENT_IDS, NUM_SEGMENTS
            ),
        ),
        (
            EDGE_WEIGHTS,
            lambda t: scatter.segment_attention_sum(
                Tensor(MATRIX), t, ROW_INDEX, SEGMENT_IDS, NUM_SEGMENTS
            ),
        ),
    ],
}

# Exported names that are legitimately absent from the sweep.
_NON_OPS = {
    "functional": {"ACTIVATIONS"},  # a name->op table, not an op
    "scatter": {"segment_count"},  # returns a constant float ndarray
}

_REGISTRIES = {
    "ops": (ops, OPS_CASES),
    "functional": (F, FUNCTIONAL_CASES),
    "scatter": (scatter, SCATTER_CASES),
}

_ALL_CASES = [
    pytest.param(module_name, op_name, index, id=f"{module_name}.{op_name}[{index}]")
    for module_name, (_, registry) in _REGISTRIES.items()
    for op_name, cases in registry.items()
    for index in range(len(cases))
]


@pytest.mark.parametrize("backend", kernels.BACKENDS)
@pytest.mark.parametrize("module_name, op_name, index", _ALL_CASES)
def test_gradcheck(backend, module_name, op_name, index):
    _, registry = _REGISTRIES[module_name]
    data, builder = registry[op_name][index]
    with kernels.use_backend(backend):
        _case(builder)(np.array(data, dtype=np.float64))


@pytest.mark.parametrize("module_name", sorted(_REGISTRIES))
def test_registry_covers_every_exported_op(module_name):
    module, registry = _REGISTRIES[module_name]
    exported = set(module.__all__) - _NON_OPS.get(module_name, set())
    missing = exported - set(registry)
    assert not missing, (
        f"{module_name}.__all__ exports {sorted(missing)} without a "
        "gradcheck case; register one in test_gradcheck.py"
    )
    stale = set(registry) - exported
    assert not stale, (
        f"gradcheck registry names {sorted(stale)} not exported by "
        f"{module_name}.__all__"
    )
