"""Segment (message-passing) primitives: correctness and gradients."""

import numpy as np
import pytest

from repro.autograd import Tensor, ops
from repro.autograd.scatter import (
    segment_attention_sum,
    gather,
    segment_count,
    segment_max,
    segment_mean,
    segment_softmax,
    segment_sum,
)

from tests.helpers import check_gradient

RNG = np.random.default_rng(11)
DATA = RNG.normal(size=(6, 3))
SEG = np.array([0, 0, 1, 2, 2, 2])


class TestGather:
    def test_forward(self):
        idx = np.array([2, 0, 2])
        np.testing.assert_allclose(gather(Tensor(DATA), idx).data, DATA[idx])

    def test_repeated_index_accumulates_gradient(self):
        x = Tensor(DATA.copy(), requires_grad=True)
        gather(x, np.array([1, 1, 1])).sum().backward()
        expected = np.zeros_like(DATA)
        expected[1] = 3.0
        np.testing.assert_allclose(x.grad, expected)

    def test_gradcheck(self):
        idx = np.array([0, 3, 3, 5])
        check_gradient(lambda t: ops.sum(gather(t, idx) ** 2.0), DATA)


class TestSegmentCount:
    def test_counts(self):
        np.testing.assert_allclose(segment_count(SEG, 4), [2, 1, 3, 0])


class TestSegmentSum:
    def test_forward_matches_loop(self):
        out = segment_sum(Tensor(DATA), SEG, 3).data
        for s in range(3):
            np.testing.assert_allclose(out[s], DATA[SEG == s].sum(axis=0))

    def test_empty_segment_is_zero(self):
        out = segment_sum(Tensor(DATA), SEG, 5).data
        np.testing.assert_allclose(out[3], 0.0)
        np.testing.assert_allclose(out[4], 0.0)

    def test_gradcheck(self):
        check_gradient(lambda t: ops.sum(segment_sum(t, SEG, 3) ** 2.0), DATA)

    def test_partition_invariant(self):
        total = segment_sum(Tensor(DATA), SEG, 3).data.sum()
        assert abs(total - DATA.sum()) < 1e-10


class TestSegmentMean:
    def test_forward_matches_loop(self):
        out = segment_mean(Tensor(DATA), SEG, 3).data
        for s in range(3):
            np.testing.assert_allclose(out[s], DATA[SEG == s].mean(axis=0))

    def test_empty_segment_is_zero(self):
        out = segment_mean(Tensor(DATA), SEG, 4).data
        np.testing.assert_allclose(out[3], 0.0)

    def test_gradcheck(self):
        check_gradient(lambda t: ops.sum(segment_mean(t, SEG, 3) ** 2.0), DATA)


class TestSegmentMax:
    def test_forward_matches_loop(self):
        out = segment_max(Tensor(DATA), SEG, 3).data
        for s in range(3):
            np.testing.assert_allclose(out[s], DATA[SEG == s].max(axis=0))

    def test_empty_segment_is_zero_not_minus_inf(self):
        out = segment_max(Tensor(DATA), SEG, 4).data
        np.testing.assert_allclose(out[3], 0.0)
        assert np.isfinite(out).all()

    def test_gradcheck(self):
        check_gradient(lambda t: ops.sum(segment_max(t, SEG, 3) ** 2.0), DATA)

    def test_gradient_routes_to_max_only(self):
        x = Tensor(np.array([[1.0], [5.0], [2.0]]), requires_grad=True)
        segment_max(x, np.array([0, 0, 0]), 1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.0], [1.0], [0.0]])

    def test_tie_shares_gradient(self):
        x = Tensor(np.array([[3.0], [3.0]]), requires_grad=True)
        segment_max(x, np.array([0, 0]), 1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.5], [0.5]])

    def test_negative_values(self):
        x = Tensor(np.array([[-5.0], [-2.0]]))
        out = segment_max(x, np.array([0, 0]), 1).data
        np.testing.assert_allclose(out, [[-2.0]])


class TestSegmentSoftmax:
    def test_sums_to_one_per_segment(self):
        scores = Tensor(RNG.normal(size=6))
        out = segment_softmax(scores, SEG, 3).data
        sums = np.bincount(SEG, weights=out, minlength=3)
        np.testing.assert_allclose(sums, 1.0)

    def test_shift_invariance(self):
        scores = RNG.normal(size=6)
        a = segment_softmax(Tensor(scores), SEG, 3).data
        b = segment_softmax(Tensor(scores + 500.0), SEG, 3).data
        np.testing.assert_allclose(a, b, atol=1e-10)

    def test_singleton_segment_is_one(self):
        out = segment_softmax(Tensor(np.array([3.0])), np.array([0]), 1).data
        np.testing.assert_allclose(out, [1.0])

    def test_rejects_matrix_scores(self):
        with pytest.raises(ValueError, match="1-D"):
            segment_softmax(Tensor(np.zeros((2, 2))), np.array([0, 1]), 2)

    def test_gradcheck(self):
        weight = Tensor(RNG.normal(size=6))
        scores = RNG.normal(size=6)
        check_gradient(
            lambda t: ops.sum(segment_softmax(t, SEG, 3) * weight), scores
        )

    def test_extreme_scores_stable(self):
        scores = Tensor(np.array([1e4, -1e4, 0.0, 1e4, 1e4, -1e4]))
        out = segment_softmax(scores, SEG, 3).data
        assert np.isfinite(out).all()


class TestSegmentAttentionSum:
    SRC = np.array([0, 2, 1, 4, 3, 5])

    def test_matches_composed_spelling(self):
        w = RNG.normal(size=6)
        fused = segment_attention_sum(Tensor(DATA), Tensor(w), self.SRC, SEG, 3)
        composed = segment_sum(
            gather(Tensor(DATA), self.SRC) * Tensor(w[:, None]), SEG, 3
        )
        np.testing.assert_array_equal(fused.data, composed.data)

    def test_multi_head_weights(self):
        x = RNG.normal(size=(6, 2, 4))
        w = RNG.normal(size=(6, 2))
        fused = segment_attention_sum(Tensor(x), Tensor(w), self.SRC, SEG, 3)
        composed = segment_sum(
            gather(Tensor(x), self.SRC) * Tensor(w[:, :, None]), SEG, 3
        )
        np.testing.assert_array_equal(fused.data, composed.data)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="one more axis"):
            segment_attention_sum(Tensor(DATA), Tensor(DATA), self.SRC, SEG, 3)

    def test_gradcheck_features(self):
        w = RNG.normal(size=6)
        check_gradient(
            lambda t: ops.sum(
                segment_attention_sum(t, Tensor(w), self.SRC, SEG, 3) ** 2.0
            ),
            DATA,
        )

    def test_gradcheck_weights(self):
        w = RNG.normal(size=6)
        check_gradient(
            lambda t: ops.sum(
                segment_attention_sum(Tensor(DATA), t, self.SRC, SEG, 3) ** 2.0
            ),
            w,
        )

    def test_constant_weights_get_no_gradient(self):
        x = Tensor(DATA.copy(), requires_grad=True)
        w = Tensor(np.ones(6))
        segment_attention_sum(x, w, self.SRC, SEG, 3).sum().backward()
        assert x.grad is not None
        assert w.grad is None
