"""Hypothesis property tests for the autograd substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.autograd import Tensor, functional as F, ops
from repro.autograd.scatter import segment_mean, segment_softmax, segment_sum
from repro.autograd.tensor import _unbroadcast

finite = st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False)


def matrices(max_rows=6, max_cols=5):
    return arrays(
        np.float64,
        st.tuples(st.integers(1, max_rows), st.integers(1, max_cols)),
        elements=finite,
    )


@given(matrices())
@settings(max_examples=40, deadline=None)
def test_grad_of_sum_is_ones(data):
    x = Tensor(data, requires_grad=True)
    ops.sum(x).backward()
    np.testing.assert_allclose(x.grad, np.ones_like(data))


@given(matrices(), st.floats(-5, 5, allow_nan=False))
@settings(max_examples=40, deadline=None)
def test_grad_is_linear_in_seed(data, scale):
    x1 = Tensor(data, requires_grad=True)
    (ops.sum(x1 * x1)).backward()
    x2 = Tensor(data, requires_grad=True)
    (ops.sum(x2 * x2) * scale).backward()
    np.testing.assert_allclose(x2.grad, scale * x1.grad, atol=1e-8, rtol=1e-8)


@given(matrices())
@settings(max_examples=40, deadline=None)
def test_softmax_rows_are_distributions(data):
    out = F.softmax(Tensor(data), axis=1).data
    assert (out >= 0).all()
    np.testing.assert_allclose(out.sum(axis=1), 1.0, atol=1e-9)


@given(matrices())
@settings(max_examples=40, deadline=None)
def test_relu_output_nonnegative_and_sparse_grad(data):
    x = Tensor(data, requires_grad=True)
    out = F.relu(x)
    assert (out.data >= 0).all()
    ops.sum(out).backward()
    assert set(np.unique(x.grad)) <= {0.0, 1.0}


@given(
    arrays(np.float64, st.integers(1, 30), elements=finite),
    st.integers(1, 5),
    st.randoms(use_true_random=False),
)
@settings(max_examples=40, deadline=None)
def test_segment_sum_partition_property(data, num_segments, random):
    seg = np.array([random.randrange(num_segments) for __ in data], dtype=np.int64)
    out = segment_sum(Tensor(data), seg, num_segments).data
    assert abs(out.sum() - data.sum()) < 1e-6 * max(1.0, abs(data).sum())


@given(
    arrays(np.float64, st.integers(1, 30), elements=st.floats(-50, 50)),
    st.integers(1, 5),
    st.randoms(use_true_random=False),
)
@settings(max_examples=40, deadline=None)
def test_segment_softmax_is_distribution_per_nonempty_segment(data, num_segments, random):
    seg = np.array([random.randrange(num_segments) for __ in data], dtype=np.int64)
    out = segment_softmax(Tensor(data), seg, num_segments).data
    assert (out >= 0).all()
    sums = np.bincount(seg, weights=out, minlength=num_segments)
    present = np.bincount(seg, minlength=num_segments) > 0
    np.testing.assert_allclose(sums[present], 1.0, atol=1e-9)


@given(
    arrays(np.float64, st.tuples(st.integers(1, 10), st.integers(1, 4)), elements=finite),
    st.integers(1, 4),
    st.randoms(use_true_random=False),
)
@settings(max_examples=40, deadline=None)
def test_segment_mean_within_bounds(data, num_segments, random):
    seg = np.array([random.randrange(num_segments) for __ in data], dtype=np.int64)
    out = segment_mean(Tensor(data), seg, num_segments).data
    for s in range(num_segments):
        members = data[seg == s]
        if len(members):
            assert (out[s] >= members.min(axis=0) - 1e-9).all()
            assert (out[s] <= members.max(axis=0) + 1e-9).all()


@given(matrices())
@settings(max_examples=40, deadline=None)
def test_unbroadcast_restores_shape(data):
    broadcast = np.broadcast_to(data, (3,) + data.shape)
    reduced = _unbroadcast(np.array(broadcast), data.shape)
    np.testing.assert_allclose(reduced, 3 * data)


@given(matrices(max_rows=4, max_cols=4))
@settings(max_examples=30, deadline=None)
def test_double_transpose_identity(data):
    x = Tensor(data, requires_grad=True)
    y = ops.transpose(ops.transpose(x))
    np.testing.assert_allclose(y.data, data)
    ops.sum(y * y).backward()
    np.testing.assert_allclose(x.grad, 2 * data, atol=1e-9)


@given(matrices(), matrices())
@settings(max_examples=30, deadline=None)
def test_add_commutes(a, b):
    if a.shape != b.shape:
        return
    left = ops.add(Tensor(a), Tensor(b)).data
    right = ops.add(Tensor(b), Tensor(a)).data
    np.testing.assert_allclose(left, right)
