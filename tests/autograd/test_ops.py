"""Finite-difference verification of every primitive op."""

import numpy as np
import pytest

from repro.autograd import Tensor, ops

from tests.helpers import check_gradient

RNG = np.random.default_rng(42)
MATRIX = RNG.normal(size=(4, 3))
POSITIVE = np.abs(RNG.normal(size=(4, 3))) + 0.5


class TestElementwiseGradients:
    @pytest.mark.parametrize(
        "name, fn, data",
        [
            ("exp", ops.exp, MATRIX),
            ("log", ops.log, POSITIVE),
            ("sqrt", ops.sqrt, POSITIVE),
            ("tanh", ops.tanh, MATRIX),
            ("sigmoid", ops.sigmoid, MATRIX),
            ("softplus", ops.softplus, MATRIX),
            ("abs", ops.abs, MATRIX + 0.1),  # keep away from the kink
            ("neg", ops.neg, MATRIX),
        ],
    )
    def test_unary(self, name, fn, data):
        check_gradient(lambda t: ops.sum(fn(t)), data)

    def test_pow(self):
        check_gradient(lambda t: ops.sum(ops.pow(t, 3.0)), MATRIX)

    def test_pow_fractional_on_positive(self):
        check_gradient(lambda t: ops.sum(ops.pow(t, 0.5)), POSITIVE)

    def test_add_both_sides(self):
        other = Tensor(RNG.normal(size=(4, 3)))
        check_gradient(lambda t: ops.sum(ops.add(t, other) * ops.add(other, t)), MATRIX)

    def test_sub_and_div(self):
        other = Tensor(POSITIVE)
        check_gradient(lambda t: ops.sum(ops.div(ops.sub(t, other), other)), MATRIX)

    def test_div_denominator_gradient(self):
        numerator = Tensor(MATRIX)
        check_gradient(lambda t: ops.sum(ops.div(numerator, t)), POSITIVE)

    def test_mul_broadcast(self):
        row = Tensor(RNG.normal(size=(1, 3)))
        check_gradient(lambda t: ops.sum(ops.mul(t, row)), MATRIX)

    def test_maximum_gradient(self):
        other = Tensor(RNG.normal(size=(4, 3)))
        check_gradient(lambda t: ops.sum(ops.maximum(t, other)), MATRIX + 0.05)

    def test_maximum_tie_splits_gradient(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        b = Tensor(np.array([1.0]), requires_grad=True)
        ops.maximum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.5])
        np.testing.assert_allclose(b.grad, [0.5])

    def test_clip_gradient_masks_outside(self):
        x = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        ops.clip(x, -1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_clip_one_sided(self):
        x = Tensor(np.array([-2.0, 2.0]), requires_grad=True)
        ops.clip(x, low=0.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0])

    def test_where_routes_gradient(self):
        cond = np.array([True, False, True])
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        ops.where(cond, a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])

    def test_where_accepts_tensor_condition(self):
        cond = Tensor(np.array([1.0, 0.0]))
        out = ops.where(cond, Tensor([5.0, 5.0]), Tensor([7.0, 7.0]))
        np.testing.assert_allclose(out.data, [5.0, 7.0])

    def test_tensor_clip_method(self):
        x = Tensor(np.array([-3.0, 0.0, 3.0]), requires_grad=True)
        y = x.clip(-1.0, 1.0)
        np.testing.assert_allclose(y.data, [-1.0, 0.0, 1.0])
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])


class TestMatmul:
    def test_forward_matches_numpy(self):
        a, b = RNG.normal(size=(3, 4)), RNG.normal(size=(4, 2))
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_gradient_left(self):
        b = Tensor(RNG.normal(size=(3, 2)))
        check_gradient(lambda t: ops.sum(ops.matmul(t, b)), RNG.normal(size=(4, 3)))

    def test_gradient_right(self):
        a = Tensor(RNG.normal(size=(4, 3)))
        check_gradient(lambda t: ops.sum(ops.matmul(a, t)), RNG.normal(size=(3, 2)))

    def test_batched(self):
        a = Tensor(RNG.normal(size=(5, 3, 4)))
        check_gradient(lambda t: ops.sum(ops.matmul(a, t)), RNG.normal(size=(4, 2)))

    def test_rejects_vectors(self):
        with pytest.raises(ValueError, match="ndim"):
            ops.matmul(Tensor(np.ones(3)), Tensor(np.ones((3, 2))))


class TestReductions:
    @pytest.mark.parametrize("axis", [None, 0, 1])
    @pytest.mark.parametrize("keepdims", [False, True])
    def test_sum_gradient(self, axis, keepdims):
        check_gradient(lambda t: ops.sum(ops.sum(t, axis=axis, keepdims=keepdims)), MATRIX)

    @pytest.mark.parametrize("axis", [None, 0, 1])
    def test_mean_gradient(self, axis):
        check_gradient(lambda t: ops.sum(ops.mean(t, axis=axis)), MATRIX)

    @pytest.mark.parametrize("axis", [None, 0, 1])
    def test_max_gradient(self, axis):
        data = RNG.normal(size=(4, 3))  # distinct values, no ties
        check_gradient(lambda t: ops.sum(ops.max(t, axis=axis)), data)

    def test_max_forward(self):
        x = Tensor(MATRIX)
        np.testing.assert_allclose(ops.max(x, axis=0).data, MATRIX.max(axis=0))

    def test_max_tie_shares_gradient(self):
        x = Tensor(np.array([[1.0, 1.0, 0.0]]), requires_grad=True)
        ops.max(x, axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.5, 0.5, 0.0]])

    def test_mean_value(self):
        assert ops.mean(Tensor(np.array([1.0, 3.0]))).item() == 2.0


class TestShapeOps:
    def test_reshape_roundtrip_gradient(self):
        check_gradient(lambda t: ops.sum(ops.reshape(t, (12,)) * 2.0), MATRIX)

    def test_transpose_gradient(self):
        check_gradient(lambda t: ops.sum(ops.transpose(t) * Tensor(MATRIX.T)), MATRIX)

    def test_transpose_with_axes(self):
        data = RNG.normal(size=(2, 3, 4))
        weight = Tensor(RNG.normal(size=(4, 2, 3)))
        check_gradient(
            lambda t: ops.sum(ops.transpose(t, (2, 0, 1)) * weight), data
        )

    def test_getitem_fancy_accumulates(self):
        x = Tensor(np.zeros(3), requires_grad=True)
        idx = np.array([0, 0, 2])
        ops.getitem(x, idx).sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 0.0, 1.0])

    def test_getitem_gradcheck(self):
        idx = np.array([0, 2, 2, 1])
        check_gradient(lambda t: ops.sum(ops.getitem(t, idx) ** 2.0), MATRIX)

    def test_concatenate_gradients(self):
        b = Tensor(RNG.normal(size=(2, 3)))
        check_gradient(
            lambda t: ops.sum(ops.concatenate([t, b], axis=0) ** 2.0), MATRIX
        )

    def test_concatenate_axis1(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        out = ops.concatenate([a, b], axis=1)
        assert out.shape == (2, 5)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 2)))
        np.testing.assert_allclose(b.grad, np.ones((2, 3)))

    def test_stack_gradients(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        out = ops.stack([a, b], axis=1)
        assert out.shape == (2, 2)
        (out * Tensor(np.array([[1.0, 10.0], [100.0, 1000.0]]))).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 100.0])
        np.testing.assert_allclose(b.grad, [10.0, 1000.0])
