"""Activations, softmax family, dropout and losses."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F, ops

from tests.helpers import check_gradient

RNG = np.random.default_rng(3)
MATRIX = RNG.normal(size=(5, 4))


class TestActivations:
    @pytest.mark.parametrize(
        "fn",
        [F.relu, F.leaky_relu, F.elu, F.tanh, F.sigmoid],
        ids=["relu", "leaky_relu", "elu", "tanh", "sigmoid"],
    )
    def test_gradient(self, fn):
        data = MATRIX + 0.05  # keep clear of relu/elu kinks
        check_gradient(lambda t: ops.sum(fn(t)), data)

    def test_relu_zeroes_negatives(self):
        out = F.relu(Tensor([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(out.data, [0.0, 0.0, 2.0])

    def test_leaky_relu_slope(self):
        out = F.leaky_relu(Tensor([-10.0]), negative_slope=0.2)
        np.testing.assert_allclose(out.data, [-2.0])

    def test_elu_saturates(self):
        out = F.elu(Tensor([-50.0]))
        np.testing.assert_allclose(out.data, [-1.0], atol=1e-6)

    def test_elu_no_overflow_on_large_positive(self):
        out = F.elu(Tensor([1000.0]))
        assert np.isfinite(out.data).all()
        np.testing.assert_allclose(out.data, [1000.0])

    def test_sigmoid_range_and_symmetry(self):
        x = Tensor(np.linspace(-50, 50, 11))
        s = F.sigmoid(x).data
        assert ((s >= 0) & (s <= 1)).all()
        np.testing.assert_allclose(s + s[::-1], 1.0, atol=1e-12)

    def test_linear_activation_is_identity(self):
        x = Tensor([1.0, -2.0])
        np.testing.assert_allclose(F.ACTIVATIONS["linear"](x).data, x.data)

    def test_activation_registry_complete(self):
        for name in ("relu", "leaky_relu", "elu", "tanh", "sigmoid", "linear"):
            assert name in F.ACTIVATIONS


class TestSoftmax:
    def test_rows_sum_to_one(self):
        out = F.softmax(Tensor(MATRIX), axis=1)
        np.testing.assert_allclose(out.data.sum(axis=1), 1.0)

    def test_shift_invariance(self):
        a = F.softmax(Tensor(MATRIX), axis=1).data
        b = F.softmax(Tensor(MATRIX + 1000.0), axis=1).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_no_overflow_at_extremes(self):
        out = F.softmax(Tensor([[1e4, -1e4]]), axis=1)
        assert np.isfinite(out.data).all()

    def test_log_softmax_matches_log_of_softmax(self):
        ls = F.log_softmax(Tensor(MATRIX), axis=1).data
        s = F.softmax(Tensor(MATRIX), axis=1).data
        np.testing.assert_allclose(ls, np.log(s), atol=1e-10)

    def test_softmax_gradient(self):
        weight = Tensor(RNG.normal(size=MATRIX.shape))
        check_gradient(lambda t: ops.sum(F.softmax(t, axis=1) * weight), MATRIX)

    def test_log_softmax_gradient(self):
        weight = Tensor(RNG.normal(size=MATRIX.shape))
        check_gradient(lambda t: ops.sum(F.log_softmax(t, axis=1) * weight), MATRIX)


class TestDropout:
    def test_identity_when_not_training(self):
        rng = np.random.default_rng(0)
        x = Tensor(MATRIX)
        out = F.dropout(x, 0.5, training=False, rng=rng)
        np.testing.assert_allclose(out.data, MATRIX)

    def test_identity_when_p_zero(self):
        rng = np.random.default_rng(0)
        out = F.dropout(Tensor(MATRIX), 0.0, training=True, rng=rng)
        np.testing.assert_allclose(out.data, MATRIX)

    def test_scales_kept_values(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((100, 100)))
        out = F.dropout(x, 0.5, training=True, rng=rng).data
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)

    def test_expected_value_preserved(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones(100_000))
        out = F.dropout(x, 0.3, training=True, rng=rng).data
        assert abs(out.mean() - 1.0) < 0.02

    def test_invalid_probability_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="probability"):
            F.dropout(Tensor([1.0]), 1.0, training=True, rng=rng)

    def test_gradient_uses_same_mask(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones(50), requires_grad=True)
        out = F.dropout(x, 0.5, training=True, rng=rng)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, out.data)


class TestLosses:
    def test_cross_entropy_matches_manual(self):
        logits = np.array([[2.0, 1.0, 0.1], [0.5, 2.5, 0.2]])
        targets = np.array([0, 1])
        loss = F.cross_entropy(Tensor(logits), targets).item()
        probs = np.exp(logits) / np.exp(logits).sum(axis=1, keepdims=True)
        expected = -np.log(probs[[0, 1], targets]).mean()
        assert abs(loss - expected) < 1e-10

    def test_cross_entropy_gradient(self):
        targets = np.array([0, 2, 1, 3, 0])
        check_gradient(
            lambda t: F.cross_entropy(t, targets), RNG.normal(size=(5, 4))
        )

    def test_cross_entropy_perfect_prediction_near_zero(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss = F.cross_entropy(Tensor(logits), np.array([0, 1])).item()
        assert loss < 1e-6

    def test_nll_reductions(self):
        log_probs = Tensor(np.log(np.full((2, 2), 0.5)))
        targets = np.array([0, 1])
        none = F.nll_loss(log_probs, targets, reduction="none")
        assert none.shape == (2,)
        total = F.nll_loss(log_probs, targets, reduction="sum").item()
        mean = F.nll_loss(log_probs, targets, reduction="mean").item()
        assert abs(total - 2 * mean) < 1e-12

    def test_unknown_reduction_raises(self):
        with pytest.raises(ValueError, match="reduction"):
            F.cross_entropy(Tensor(np.zeros((1, 2))), np.array([0]), reduction="bad")

    def test_bce_matches_manual(self):
        logits = np.array([[0.5, -1.0]])
        targets = np.array([[1.0, 0.0]])
        loss = F.binary_cross_entropy_with_logits(
            Tensor(logits), Tensor(targets)
        ).item()
        p = 1 / (1 + np.exp(-logits))
        expected = -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).mean()
        assert abs(loss - expected) < 1e-10

    def test_bce_stable_at_extreme_logits(self):
        logits = Tensor(np.array([[1000.0, -1000.0]]))
        targets = Tensor(np.array([[1.0, 0.0]]))
        loss = F.binary_cross_entropy_with_logits(logits, targets).item()
        assert np.isfinite(loss)
        assert loss < 1e-6

    def test_bce_gradient(self):
        targets = Tensor((RNG.random((3, 4)) > 0.5).astype(np.float64))
        check_gradient(
            lambda t: F.binary_cross_entropy_with_logits(t, targets),
            RNG.normal(size=(3, 4)),
        )

    def test_mse(self):
        loss = F.mse_loss(Tensor([1.0, 2.0]), Tensor([1.0, 4.0])).item()
        assert abs(loss - 2.0) < 1e-12

    def test_mse_gradient(self):
        target = Tensor(RNG.normal(size=(3, 3)))
        check_gradient(lambda t: F.mse_loss(t, target), RNG.normal(size=(3, 3)))
