"""Tensor core semantics: tape, backward, detach, grad modes."""

import numpy as np
import pytest

from repro.autograd import Tensor, as_tensor, is_grad_enabled, no_grad, set_grad_enabled
from repro.autograd import ops


class TestConstruction:
    def test_wraps_array_as_float64(self):
        t = Tensor([1, 2.5, 3])
        assert t.dtype == np.float64
        assert t.shape == (3,)

    def test_int_data_stays_int(self):
        t = Tensor(np.array([1, 2, 3], dtype=np.int64))
        assert t.dtype == np.int64

    def test_from_tensor_shares_data(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        assert b.data is a.data

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_as_tensor_passthrough(self):
        a = Tensor([1.0])
        assert as_tensor(a) is a

    def test_as_tensor_coerces_scalar(self):
        t = as_tensor(3.0)
        assert t.item() == 3.0

    def test_basic_properties(self):
        t = Tensor(np.zeros((2, 3)))
        assert t.ndim == 2
        assert t.size == 6
        assert len(t) == 2
        assert "Tensor" in repr(t)

    def test_repr_shows_requires_grad(self):
        assert "requires_grad=True" in repr(Tensor([1.0], requires_grad=True))


class TestBackward:
    def test_scalar_backward_seeds_ones(self):
        x = Tensor([2.0, 3.0], requires_grad=True)
        (x * x).sum().backward()
        np.testing.assert_allclose(x.grad, [4.0, 6.0])

    def test_backward_requires_scalar_without_seed(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError, match="scalar"):
            (x * x).backward()

    def test_backward_with_explicit_seed(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 3.0
        y.backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(x.grad, [3.0, 30.0])

    def test_gradient_accumulates_across_backwards(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 2.0).sum().backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_zero_grad_resets(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph_accumulates_once_per_path(self):
        # y = x*2; z = y + y; dz/dx = 4.
        x = Tensor([1.0], requires_grad=True)
        y = x * 2.0
        z = y + y
        z.sum().backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_shared_leaf_across_branches(self):
        x = Tensor([3.0], requires_grad=True)
        z = x * x + x
        z.sum().backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_deep_chain(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for __ in range(50):
            y = y + x
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [51.0])

    def test_no_grad_to_non_required_leaves(self):
        x = Tensor([1.0], requires_grad=True)
        c = Tensor([2.0])
        (x * c).sum().backward()
        assert c.grad is None


class TestGradMode:
    def test_no_grad_blocks_tape(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_no_grad_restores_on_exception(self):
        assert is_grad_enabled()
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_set_grad_enabled(self):
        set_grad_enabled(False)
        try:
            x = Tensor([1.0], requires_grad=True)
            assert not (x * 2.0).requires_grad
        finally:
            set_grad_enabled(True)

    def test_grad_mode_is_per_thread(self):
        # A worker thread's no_grad block must not disable recording on
        # the main thread — serve workers run eval forwards concurrently
        # with (and after) training code.
        import threading

        entered = threading.Event()
        release = threading.Event()

        def worker():
            with no_grad():
                entered.set()
                release.wait(timeout=30)

        thread = threading.Thread(target=worker)
        thread.start()
        try:
            assert entered.wait(timeout=30)
            # Worker is inside no_grad right now; we still record.
            assert is_grad_enabled()
            x = Tensor([1.0], requires_grad=True)
            assert (x * 2.0).requires_grad
        finally:
            release.set()
            thread.join()
        assert is_grad_enabled()

    def test_overlapping_no_grad_blocks_cannot_wedge_grad_mode(self):
        # Regression: with a process-global flag, two threads whose
        # save/restore windows interleave could leave grad mode stuck
        # off after both exited. Hammer the window from two threads.
        import threading

        def toggler():
            for __ in range(500):
                with no_grad():
                    pass

        threads = [threading.Thread(target=toggler) for __ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert is_grad_enabled()
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        np.testing.assert_allclose(x.grad, [2.0])

    def test_detach_cuts_tape(self):
        x = Tensor([1.0], requires_grad=True)
        y = (x * 2.0).detach()
        z = y * 3.0
        assert not z.requires_grad
        assert not y.requires_grad

    def test_detach_shares_data(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        assert x.detach().data is x.data


class TestOperatorSugar:
    def test_radd_rsub_rmul_rtruediv(self):
        x = Tensor([2.0], requires_grad=True)
        y = (1.0 + x) - 1.0
        z = (2.0 * x) / 2.0
        w = 4.0 / x
        np.testing.assert_allclose(y.data, [2.0])
        np.testing.assert_allclose(z.data, [2.0])
        np.testing.assert_allclose(w.data, [2.0])

    def test_neg_and_pow(self):
        x = Tensor([2.0], requires_grad=True)
        ((-x) ** 2).sum().backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_transpose_property(self):
        x = Tensor(np.arange(6.0).reshape(2, 3))
        assert x.T.shape == (3, 2)

    def test_reshape_method_variants(self):
        x = Tensor(np.arange(6.0))
        assert x.reshape(2, 3).shape == (2, 3)
        assert x.reshape((3, 2)).shape == (3, 2)

    def test_getitem_slice(self):
        x = Tensor(np.arange(10.0), requires_grad=True)
        y = x[2:5]
        y.sum().backward()
        expected = np.zeros(10)
        expected[2:5] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_matmul_operator(self):
        a = Tensor(np.eye(2), requires_grad=True)
        b = Tensor(np.ones((2, 2)))
        assert (a @ b).shape == (2, 2)


class TestBroadcastingGradients:
    def test_bias_broadcast_sums_batch(self):
        x = Tensor(np.ones((4, 3)))
        b = Tensor(np.zeros(3), requires_grad=True)
        (x + b).sum().backward()
        np.testing.assert_allclose(b.grad, [4.0, 4.0, 4.0])

    def test_keepdim_broadcast(self):
        s = Tensor(np.ones((3, 1)), requires_grad=True)
        x = Tensor(np.ones((3, 5)))
        (s * x).sum().backward()
        np.testing.assert_allclose(s.grad, np.full((3, 1), 5.0))

    def test_scalar_broadcast(self):
        s = Tensor(2.0, requires_grad=True)
        x = Tensor(np.ones((2, 2)))
        (s * x).sum().backward()
        np.testing.assert_allclose(s.grad, 4.0)
