"""Fused-vs-naive kernel equivalence, plan structure, and memo identity.

The fused CSR backend must be indistinguishable from the naive
``ufunc.at`` reference: property tests drive both backends over random
segment structures (including empty segments, isolated outputs and
zero-length inputs) and assert forward agreement within 1e-9 and
finite-difference gradients under each backend.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.autograd import kernels
from repro.autograd.kernels import (
    SegmentPlan,
    peek_plan,
    plan_for,
    scatter_max,
    scatter_sum,
    use_backend,
)
from repro.autograd.scatter import (
    gather,
    segment_max,
    segment_mean,
    segment_softmax,
    segment_sum,
)
from repro.autograd.tensor import Tensor
from tests.helpers import check_gradient

finite = st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False)


@st.composite
def segmented_values(draw, max_rows=12, max_segments=8, max_cols=4):
    """Random (values, segment_ids, num_segments); empty segments likely."""
    num_segments = draw(st.integers(1, max_segments))
    num_rows = draw(st.integers(0, max_rows))
    ids = draw(
        arrays(
            np.int64, (num_rows,), elements=st.integers(0, num_segments - 1)
        )
    )
    cols = draw(st.integers(1, max_cols))
    values = draw(arrays(np.float64, (num_rows, cols), elements=finite))
    return values, ids, num_segments


def both_backends(fn):
    """Run ``fn()`` under each backend, return {backend: result}."""
    results = {}
    for name in kernels.BACKENDS:
        with use_backend(name):
            results[name] = fn()
    return results


# ----------------------------------------------------------------------
# raw kernel equivalence
# ----------------------------------------------------------------------
@given(segmented_values())
@settings(max_examples=80, deadline=None)
def test_scatter_sum_backends_agree(case):
    values, ids, n = case
    out = both_backends(lambda: scatter_sum(values, ids, n))
    np.testing.assert_allclose(out["fused"], out["naive"], atol=1e-9, rtol=0)


@given(segmented_values())
@settings(max_examples=80, deadline=None)
def test_scatter_max_backends_agree(case):
    values, ids, n = case
    out = both_backends(lambda: scatter_max(values, ids, n))
    np.testing.assert_array_equal(out["fused"], out["naive"])


@given(segmented_values())
@settings(max_examples=40, deadline=None)
def test_scatter_sum_1d_backends_agree(case):
    values, ids, n = case
    flat = values[:, 0]
    out = both_backends(lambda: scatter_sum(flat, ids, n))
    np.testing.assert_allclose(out["fused"], out["naive"], atol=1e-9, rtol=0)


def test_scatter_sum_fused_is_bit_identical_to_naive():
    rng = np.random.default_rng(0)
    ids = rng.integers(0, 50, size=400)
    values = rng.normal(size=(400, 16))
    out = both_backends(lambda: scatter_sum(values, ids, 50))
    # Same accumulation order per output slot => exact equality.
    np.testing.assert_array_equal(out["fused"], out["naive"])


def test_scatter_sum_rejects_out_of_range_ids():
    values = np.ones((3, 2))
    ids = np.array([0, 1, 5])
    for name in kernels.BACKENDS:
        with use_backend(name):
            with pytest.raises(IndexError):
                scatter_sum(values, ids, 3)


def test_empty_input_and_empty_segments():
    values = np.zeros((0, 3))
    ids = np.zeros(0, dtype=np.int64)
    for name in kernels.BACKENDS:
        with use_backend(name):
            total = scatter_sum(values, ids, 4)
            np.testing.assert_array_equal(total, np.zeros((4, 3)))
            peak = scatter_max(values, ids, 4)
            assert np.isneginf(peak).all()


# ----------------------------------------------------------------------
# differentiable ops agree across backends, gradcheck under both
# ----------------------------------------------------------------------
@given(segmented_values())
@settings(max_examples=40, deadline=None)
def test_segment_ops_forward_agree(case):
    values, ids, n = case
    for op in (segment_sum, segment_mean, segment_max):
        out = both_backends(lambda: op(Tensor(values), ids, n).data)
        np.testing.assert_allclose(
            out["fused"], out["naive"], atol=1e-9, rtol=0
        )


@given(segmented_values(max_rows=8, max_cols=1))
@settings(max_examples=25, deadline=None)
def test_segment_softmax_forward_agree(case):
    values, ids, n = case
    if len(values) == 0:
        return
    scores = values[:, 0]
    out = both_backends(lambda: segment_softmax(Tensor(scores), ids, n).data)
    np.testing.assert_allclose(out["fused"], out["naive"], atol=1e-9, rtol=0)


@pytest.mark.parametrize("backend", kernels.BACKENDS)
@pytest.mark.parametrize("op", [segment_sum, segment_mean, segment_max])
def test_segment_op_gradients(backend, op):
    rng = np.random.default_rng(3)
    values = rng.normal(size=(9, 3))
    ids = np.array([0, 2, 2, 1, 0, 4, 4, 4, 2])  # segment 3 empty
    weights = Tensor(rng.normal(size=(5, 3)))
    with use_backend(backend):
        check_gradient(lambda t: (op(t, ids, 5) * weights).sum(), values)


@pytest.mark.parametrize("backend", kernels.BACKENDS)
def test_gather_gradient(backend):
    rng = np.random.default_rng(4)
    values = rng.normal(size=(5, 3))
    index = np.array([0, 4, 4, 2, 0, 1])  # node 3 isolated
    weights = Tensor(rng.normal(size=(6, 3)))
    with use_backend(backend):
        check_gradient(lambda t: (gather(t, index) * weights).sum(), values)


@pytest.mark.parametrize("backend", kernels.BACKENDS)
def test_segment_softmax_gradient(backend):
    rng = np.random.default_rng(5)
    scores = rng.normal(size=8)
    ids = np.array([0, 0, 1, 1, 1, 3, 3, 3])  # segment 2 empty
    weights = Tensor(rng.normal(size=8))
    with use_backend(backend):
        check_gradient(
            lambda t: (segment_softmax(t, ids, 4) * weights).sum(), scores
        )


# ----------------------------------------------------------------------
# SegmentPlan structure and the identity-keyed memo
# ----------------------------------------------------------------------
def test_plan_structure():
    ids = np.array([2, 0, 2, 2, 4], dtype=np.int64)
    plan = SegmentPlan(ids, 5)
    np.testing.assert_array_equal(plan.counts, [1, 0, 3, 0, 1])
    np.testing.assert_array_equal(plan.indptr, [0, 1, 1, 4, 4, 5])
    np.testing.assert_array_equal(plan.present, [0, 2, 4])
    np.testing.assert_array_equal(plan.starts, [0, 1, 4])
    np.testing.assert_array_equal(ids[plan.order], np.sort(ids))
    np.testing.assert_array_equal(plan.counts_float, plan.counts)
    np.testing.assert_array_equal(
        plan.counts_clamped, np.maximum(plan.counts, 1)
    )
    assert not plan.counts_float.flags.writeable
    assert not plan.counts_clamped.flags.writeable


def test_plan_rejects_bad_ids():
    with pytest.raises(IndexError):
        SegmentPlan(np.array([0, 7], dtype=np.int64), 3)
    with pytest.raises(ValueError):
        SegmentPlan(np.zeros((2, 2), dtype=np.int64), 3)


def test_flat_index_is_memoised():
    ids = np.array([1, 0, 1], dtype=np.int64)
    plan = SegmentPlan(ids, 2)
    first = plan.flat_index(3)
    np.testing.assert_array_equal(first, [3, 4, 5, 0, 1, 2, 3, 4, 5])
    assert plan.flat_index(3) is first


def test_plan_for_memoises_by_identity():
    ids = np.arange(6, dtype=np.int64) % 3
    plan = plan_for(ids, 3)
    assert plan_for(ids, 3) is plan
    assert peek_plan(ids, 3) is plan
    # A distinct but equal array gets its own plan (identity keying).
    other = ids.copy()
    assert peek_plan(other, 3) is None
    assert plan_for(other, 3) is not plan
    # Different segment count on the same array is a different key.
    wider = plan_for(ids, 5)
    assert wider is not plan
    assert wider.num_segments == 5


def test_backend_switch_validates():
    with pytest.raises(ValueError):
        kernels.set_backend("vectorized")
    before = kernels.get_backend()
    with use_backend("naive"):
        assert kernels.get_backend() == "naive"
    assert kernels.get_backend() == before
