"""Per-rule fixtures: one violating and one clean snippet each, plus
suppression-comment behavior and the reporters."""

import json
import textwrap

from repro.analysis import (
    Severity,
    analyze_source,
    default_rules,
    render_json,
    render_text,
)


def run(source: str):
    return analyze_source(
        textwrap.dedent(source), path="snippet.py", rules=default_rules()
    )


def rule_ids(result) -> list[str]:
    return [finding.rule_id for finding in result.findings]


class TestTapeMutation:
    def test_flags_data_write_outside_init(self):
        result = run(
            """
            def sgd_step(param, lr):
                param.data = param.data - lr * param.grad
            """
        )
        assert rule_ids(result) == ["tape-mutation"]
        assert result.findings[0].severity is Severity.ERROR

    def test_flags_subscript_write(self):
        result = run(
            """
            def clamp(param):
                param.data[0] = 0.0
            """
        )
        assert rule_ids(result) == ["tape-mutation"]

    def test_allows_direct_attr_in_init(self):
        result = run(
            """
            class Layer:
                def __init__(self):
                    self.weight = Parameter(zeros(3))
                    self.weight.data[0] = 1.0

                def reset_parameters(self):
                    self.weight.data = zeros(3)
            """
        )
        assert rule_ids(result) == []

    def test_flags_submodule_write_even_in_init(self):
        result = run(
            """
            class Layer:
                def __init__(self):
                    self.cell.bias.data[0] = 1.0
            """
        )
        assert rule_ids(result) == ["tape-mutation"]

    def test_plain_self_data_attribute_is_fine(self):
        result = run(
            """
            class Holder:
                def bind(self, data):
                    self.data = data
            """
        )
        assert rule_ids(result) == []


class TestUnregisteredParameter:
    def test_flags_requires_grad_tensor_on_self(self):
        result = run(
            """
            class Layer:
                def __init__(self, x):
                    self.w = Tensor(x, requires_grad=True)
            """
        )
        assert rule_ids(result) == ["unregistered-parameter"]

    def test_clean_parameter_and_module_level_tensor(self):
        result = run(
            """
            CONSTANT = Tensor(x, requires_grad=True)

            class Layer:
                def __init__(self, x):
                    self.w = Parameter(x)
                    self.buffer = Tensor(x)
            """
        )
        assert rule_ids(result) == []


class TestGlobalRng:
    def test_flags_global_calls(self):
        result = run(
            """
            import numpy as np

            def sample():
                np.random.seed(0)
                return np.random.rand(3)
            """
        )
        assert rule_ids(result) == ["global-rng", "global-rng"]

    def test_flags_global_import(self):
        result = run("from numpy.random import shuffle\n")
        assert rule_ids(result) == ["global-rng"]

    def test_allows_seeded_generator(self):
        result = run(
            """
            import numpy as np
            from numpy.random import default_rng

            def sample(rng: np.random.Generator):
                local = np.random.default_rng(0)
                return rng.normal() + local.integers(10)
            """
        )
        assert rule_ids(result) == []


class TestForbiddenImport:
    def test_flags_torch_and_jax(self):
        result = run(
            """
            import torch
            from torch_geometric.nn import GCNConv
            import jax.numpy as jnp
            """
        )
        assert rule_ids(result) == ["forbidden-import"] * 3

    def test_allows_numpy_scipy(self):
        result = run(
            """
            import numpy as np
            import scipy.sparse
            import networkx as nx
            """
        )
        assert rule_ids(result) == []


class TestMissingZeroGrad:
    def test_flags_loop_without_zero_grad(self):
        result = run(
            """
            def fit(model, optimizer, batches):
                for batch in batches:
                    loss = model(batch)
                    loss.backward()
                    optimizer.step()
            """
        )
        assert rule_ids(result) == ["missing-zero-grad"]
        assert result.findings[0].severity is Severity.WARNING
        assert result.error_count == 0

    def test_clean_loop_with_zero_grad(self):
        result = run(
            """
            def fit(model, optimizer, batches):
                for batch in batches:
                    optimizer.zero_grad()
                    loss = model(batch)
                    loss.backward()
                    optimizer.step()
            """
        )
        assert rule_ids(result) == []

    def test_backward_outside_loop_not_flagged(self):
        result = run(
            """
            def one_step(model, x):
                loss = model(x)
                loss.backward()
            """
        )
        assert rule_ids(result) == []


class TestDuplicateRegistryKey:
    def test_flags_duplicate_key(self):
        result = run(
            """
            OPS = {"gcn": 1, "gat": 2, "gcn": 3}
            """
        )
        assert rule_ids(result) == ["duplicate-registry-key"]
        assert "gcn" in result.findings[0].message

    def test_clean_registry(self):
        result = run(
            """
            OPS = {"gcn": 1, "gat": 2, **extras}
            """
        )
        assert rule_ids(result) == []


class TestBareExcept:
    def test_flags_bare_except(self):
        result = run(
            """
            try:
                risky()
            except:
                pass
            """
        )
        assert rule_ids(result) == ["bare-except"]

    def test_clean_typed_except(self):
        result = run(
            """
            try:
                risky()
            except (ValueError, KeyError):
                pass
            """
        )
        assert rule_ids(result) == []


class TestMutableDefaultArg:
    def test_flags_list_dict_and_call_defaults(self):
        result = run(
            """
            def f(x=[], y={}, z=dict()):
                return x, y, z
            """
        )
        assert rule_ids(result) == ["mutable-default-arg"] * 3

    def test_clean_none_and_tuple_defaults(self):
        result = run(
            """
            def f(x=None, y=(), z="name"):
                return x, y, z
            """
        )
        assert rule_ids(result) == []


class TestAdHocTiming:
    LIB_PATH = "src/repro/train/trainer.py"

    def run_at(self, source: str, path: str):
        return analyze_source(
            textwrap.dedent(source), path=path, rules=default_rules()
        )

    def test_flags_perf_counter_in_library_code(self):
        result = self.run_at(
            """
            import time

            def fit():
                start = time.perf_counter()
                return time.perf_counter() - start
            """,
            self.LIB_PATH,
        )
        assert rule_ids(result) == ["adhoc-timing"] * 2
        assert result.findings[0].severity is Severity.ERROR

    def test_flags_bare_import_and_time_time(self):
        result = self.run_at(
            """
            from time import perf_counter
            import time

            def fit():
                return perf_counter(), time.time(), time.monotonic()
            """,
            self.LIB_PATH,
        )
        assert rule_ids(result) == ["adhoc-timing"] * 3

    def test_obs_package_is_exempt(self):
        source = """
            import time

            def clock():
                return time.perf_counter()
            """
        assert rule_ids(self.run_at(source, "src/repro/obs/spans.py")) == []
        assert rule_ids(self.run_at(source, "src/repro/obs/autograd.py")) == []

    def test_outside_repro_package_is_out_of_scope(self):
        source = """
            import time
            start = time.perf_counter()
            """
        assert rule_ids(self.run_at(source, "benchmarks/common.py")) == []
        assert rule_ids(self.run_at(source, "tests/test_cli.py")) == []
        assert rule_ids(self.run_at(source, "snippet.py")) == []

    def test_non_clock_time_attributes_are_clean(self):
        result = self.run_at(
            """
            import time

            def pause():
                time.sleep(0.1)
                return time.strftime("%H:%M")
            """,
            self.LIB_PATH,
        )
        assert rule_ids(result) == []

    def test_suppressible_inline(self):
        result = self.run_at(
            """
            import time
            t0 = time.perf_counter()  # lint: disable=adhoc-timing -- boot probe
            """,
            self.LIB_PATH,
        )
        assert result.findings == []
        assert [f.rule_id for f in result.suppressed] == ["adhoc-timing"]


class TestNakedPrint:
    LIB_PATH = "src/repro/train/trainer.py"

    def run_at(self, source: str, path: str):
        return analyze_source(
            textwrap.dedent(source), path=path, rules=default_rules()
        )

    def test_flags_print_in_library_code(self):
        result = self.run_at(
            """
            def fit(model):
                print("epoch done")
            """,
            self.LIB_PATH,
        )
        assert rule_ids(result) == ["naked-print"]
        assert result.findings[0].severity is Severity.ERROR

    def test_cli_and_report_renderers_are_exempt(self):
        source = """
            def main():
                print("hello")
            """
        for path in (
            "src/repro/cli.py",
            "src/repro/analysis/reporters.py",
            "src/repro/obs/report.py",
            "src/repro/obs/search_report.py",
            "src/repro/obs/bench_gate.py",
        ):
            assert rule_ids(self.run_at(source, path)) == [], path

    def test_outside_repro_package_is_out_of_scope(self):
        source = 'print("benchmark banner")\n'
        assert rule_ids(self.run_at(source, "benchmarks/common.py")) == []
        assert rule_ids(self.run_at(source, "tests/test_cli.py")) == []
        assert rule_ids(self.run_at(source, "snippet.py")) == []

    def test_method_named_print_is_clean(self):
        result = self.run_at(
            """
            def render(doc):
                doc.print()
            """,
            self.LIB_PATH,
        )
        assert rule_ids(result) == []

    def test_suppressible_inline(self):
        result = self.run_at(
            """
            print("boot")  # lint: disable=naked-print -- startup banner
            """,
            self.LIB_PATH,
        )
        assert result.findings == []
        assert [f.rule_id for f in result.suppressed] == ["naked-print"]


class TestBufferedScatter:
    LIB_PATH = "src/repro/gnn/aggregators.py"

    def run_at(self, source: str, path: str):
        return analyze_source(
            textwrap.dedent(source), path=path, rules=default_rules()
        )

    def test_flags_ufunc_at_in_library_code(self):
        result = self.run_at(
            """
            import numpy as np

            def scatter(out, ids, values):
                np.add.at(out, ids, values)
                np.maximum.at(out, ids, values)
            """,
            self.LIB_PATH,
        )
        assert rule_ids(result) == ["buffered-scatter"] * 2
        assert result.findings[0].severity is Severity.ERROR

    def test_kernel_module_is_exempt(self):
        source = """
            import numpy as np

            def index_add(out, index, values):
                np.add.at(out, index, values)
            """
        assert rule_ids(self.run_at(source, "src/repro/autograd/kernels.py")) == []

    def test_outside_repro_package_is_out_of_scope(self):
        source = """
            import numpy as np
            np.add.at(out, ids, values)
            """
        assert rule_ids(self.run_at(source, "benchmarks/common.py")) == []
        assert rule_ids(self.run_at(source, "tests/test_cli.py")) == []

    def test_other_at_attributes_are_clean(self):
        result = self.run_at(
            """
            import numpy as np

            def fine(df, frame):
                frame.at[0, "col"] = 1
                return np.add(1, 2)
            """,
            self.LIB_PATH,
        )
        assert rule_ids(result) == []

    def test_suppressible_inline(self):
        result = self.run_at(
            """
            import numpy as np
            np.add.at(out, ids, values)  # lint: disable=buffered-scatter -- one-off
            """,
            self.LIB_PATH,
        )
        assert result.findings == []
        assert [f.rule_id for f in result.suppressed] == ["buffered-scatter"]


class TestRawMultiprocessing:
    LIB_PATH = "src/repro/experiments/runners.py"

    def run_at(self, source: str, path: str):
        return analyze_source(
            textwrap.dedent(source), path=path, rules=default_rules()
        )

    def test_flags_multiprocessing_imports(self):
        result = self.run_at(
            """
            import multiprocessing
            from multiprocessing import Pool
            from concurrent.futures import ProcessPoolExecutor
            """,
            self.LIB_PATH,
        )
        assert rule_ids(result) == ["raw-multiprocessing"] * 3
        assert result.findings[0].severity is Severity.ERROR

    def test_flags_os_fork_call(self):
        result = self.run_at(
            """
            import os

            def spawn():
                pid = os.fork()
                return pid
            """,
            self.LIB_PATH,
        )
        assert rule_ids(result) == ["raw-multiprocessing"]

    def test_parallel_package_is_exempt(self):
        source = """
            import multiprocessing

            def boot():
                return multiprocessing.get_context("spawn")
            """
        assert rule_ids(self.run_at(source, "src/repro/parallel/pool.py")) == []
        assert rule_ids(
            self.run_at(source, "src/repro/parallel/worker.py")
        ) == []

    def test_outside_repro_package_is_out_of_scope(self):
        source = """
            import multiprocessing
            """
        assert rule_ids(self.run_at(source, "benchmarks/common.py")) == []
        assert rule_ids(self.run_at(source, "tests/test_pool.py")) == []

    def test_plain_os_calls_are_clean(self):
        result = self.run_at(
            """
            import os

            def env():
                return os.environ.get("REPRO_SCALE"), os.getpid()
            """,
            self.LIB_PATH,
        )
        assert rule_ids(result) == []

    def test_suppressible_inline(self):
        result = self.run_at(
            """
            import multiprocessing  # lint: disable=raw-multiprocessing -- probe cpu count
            """,
            self.LIB_PATH,
        )
        assert result.findings == []
        assert [f.rule_id for f in result.suppressed] == ["raw-multiprocessing"]


class TestUncheckedNanSource:
    LIB_PATH = "src/repro/gnn/aggregators.py"

    def run_at(self, source: str, path: str):
        return analyze_source(
            textwrap.dedent(source), path=path, rules=default_rules()
        )

    def test_flags_nan_producing_ufuncs_on_tape_data(self):
        result = self.run_at(
            """
            import numpy as np

            def attention(scores):
                return np.log(scores.data), np.sqrt(scores.data)
            """,
            self.LIB_PATH,
        )
        assert rule_ids(result) == ["unchecked-nan-source"] * 2
        assert result.findings[0].severity is Severity.ERROR

    def test_flags_division_with_tape_operand(self):
        result = self.run_at(
            """
            def normalize(h, degrees):
                left = h.data / degrees
                right = degrees / h.numpy()
                return left, right
            """,
            self.LIB_PATH,
        )
        assert rule_ids(result) == ["unchecked-nan-source"] * 2

    def test_non_tape_operands_are_clean(self):
        result = self.run_at(
            """
            import numpy as np

            def stable(x):
                return np.log(x + 1.0), np.sqrt(np.abs(x)), x / 2.0
            """,
            self.LIB_PATH,
        )
        assert rule_ids(result) == []

    def test_guarded_autograd_modules_are_exempt(self):
        source = """
            import numpy as np

            def log_op(x):
                return np.log(x.data)
            """
        assert rule_ids(self.run_at(source, "src/repro/autograd/ops.py")) == []
        assert (
            rule_ids(self.run_at(source, "src/repro/autograd/functional.py")) == []
        )
        assert rule_ids(self.run_at(source, "src/repro/autograd/kernels.py")) == []

    def test_outside_repro_package_is_out_of_scope(self):
        source = """
            import numpy as np
            ratio = np.log(t.data) / t.data
            """
        assert rule_ids(self.run_at(source, "benchmarks/common.py")) == []
        assert rule_ids(self.run_at(source, "tests/test_cli.py")) == []
        assert rule_ids(self.run_at(source, "snippet.py")) == []

    def test_suppressible_inline(self):
        result = self.run_at(
            """
            import numpy as np
            y = np.log(t.data)  # lint: disable=unchecked-nan-source -- clamped
            """,
            self.LIB_PATH,
        )
        assert result.findings == []
        assert [f.rule_id for f in result.suppressed] == ["unchecked-nan-source"]


class TestTapeInInference:
    SERVE_PATH = "src/repro/serve/engine.py"

    def run_at(self, source: str, path: str):
        return analyze_source(
            textwrap.dedent(source), path=path, rules=default_rules()
        )

    def test_flags_unguarded_forward_in_serve(self):
        result = self.run_at(
            """
            def hot_path(model, graph, cache):
                return model.forward(graph.features, cache).numpy()
            """,
            self.SERVE_PATH,
        )
        assert rule_ids(result) == ["tape-in-inference"]
        assert result.findings[0].severity is Severity.ERROR

    def test_flags_unguarded_encode_and_embed(self):
        result = self.run_at(
            """
            def align(model):
                z1, z2 = model.encode()
                return model.embed()
            """,
            self.SERVE_PATH,
        )
        assert rule_ids(result) == ["tape-in-inference", "tape-in-inference"]

    def test_codec_encode_is_not_the_model_api(self):
        result = self.run_at(
            """
            def key(payload):
                return payload.encode("utf-8")
            """,
            self.SERVE_PATH,
        )
        assert rule_ids(result) == []

    def test_backward_is_flagged_even_inside_no_grad(self):
        result = self.run_at(
            """
            def bad(model, loss):
                with no_grad():
                    loss.backward()
            """,
            self.SERVE_PATH,
        )
        assert rule_ids(result) == ["tape-in-inference"]

    def test_no_grad_block_is_clean(self):
        result = self.run_at(
            """
            def hot_path(model, graph, cache):
                with no_grad():
                    logits = model.forward(graph.features, cache).numpy()
                return logits
            """,
            self.SERVE_PATH,
        )
        assert rule_ids(result) == []

    def test_outside_serve_is_out_of_scope(self):
        source = """
            def train_step(model, batch):
                loss = model.forward(batch).sum()
                loss.backward()
            """
        assert rule_ids(self.run_at(source, "src/repro/train/trainer.py")) == []
        assert rule_ids(self.run_at(source, "tests/serve/test_engine.py")) == []

    def test_suppressible_inline(self):
        result = self.run_at(
            """
            def debug_endpoint(model, x):
                return model.forward(x)  # lint: disable=tape-in-inference -- grad probe
            """,
            self.SERVE_PATH,
        )
        assert result.findings == []
        assert [f.rule_id for f in result.suppressed] == ["tape-in-inference"]


class TestUntracedServePath:
    SERVE_PATH = "src/repro/serve/server.py"

    def run_at(self, source: str, path: str):
        return analyze_source(
            textwrap.dedent(source), path=path, rules=default_rules()
        )

    def test_flags_unguarded_resolve_and_fail(self):
        result = self.run_at(
            """
            def drain(pending, value, error, now):
                pending._resolve(value, now)
                pending._fail(error, now)
            """,
            self.SERVE_PATH,
        )
        assert rule_ids(result) == [
            "untraced-serve-path", "untraced-serve-path",
        ]
        assert result.findings[0].severity is Severity.ERROR

    def test_stage_block_is_clean(self):
        result = self.run_at(
            """
            def drain(pending, value, now):
                with pending.trace.stage("resolve"):
                    pending._resolve(value, now)
            """,
            self.SERVE_PATH,
        )
        assert rule_ids(result) == []

    def test_guard_must_lexically_contain_the_call(self):
        result = self.run_at(
            """
            def drain(pending, value, now):
                with pending.trace.stage("resolve"):
                    pass
                pending._resolve(value, now)
            """,
            self.SERVE_PATH,
        )
        assert rule_ids(result) == ["untraced-serve-path"]

    def test_other_private_calls_are_clean(self):
        result = self.run_at(
            """
            def drain(server, pending):
                server._dispatch(pending)
                pending._notify()
            """,
            self.SERVE_PATH,
        )
        assert rule_ids(result) == []

    def test_outside_serve_is_out_of_scope(self):
        source = """
            def drain(pending, value, now):
                pending._resolve(value, now)
            """
        assert rule_ids(self.run_at(source, "src/repro/obs/spans.py")) == []
        assert rule_ids(self.run_at(source, "tests/serve/test_server.py")) == []

    def test_suppressible_inline(self):
        result = self.run_at(
            """
            def shutdown(pending, error, now):
                pending._fail(error, now)  # lint: disable=untraced-serve-path -- teardown
            """,
            self.SERVE_PATH,
        )
        assert result.findings == []
        assert [f.rule_id for f in result.suppressed] == ["untraced-serve-path"]


class TestUnledgeredEntrypoint:
    CLI_PATH = "src/repro/cli.py"

    def run_at(self, source: str, path: str):
        return analyze_source(
            textwrap.dedent(source), path=path, rules=default_rules()
        )

    def test_flags_handler_without_record_run(self):
        result = self.run_at(
            """
            def _cmd_stats(args, scale):
                print(run_table4(scale).render())
                return 0
            """,
            self.CLI_PATH,
        )
        assert rule_ids(result) == ["unledgered-entrypoint"]
        assert result.findings[0].severity is Severity.ERROR

    def test_record_run_anywhere_in_body_is_clean(self):
        result = self.run_at(
            """
            def _cmd_stats(args, scale):
                rendered = run_table4(scale).render()
                print(rendered)
                record_run("stats", {"scale": args.scale})
                return 0

            def _cmd_search(args, scale):
                if args.events:
                    with record_events(args.events):
                        runs.record_run("search", {})
                return 0
            """,
            self.CLI_PATH,
        )
        assert rule_ids(result) == []

    def test_non_handler_functions_are_out_of_scope(self):
        result = self.run_at(
            """
            def _run_report_bench(args):
                return 0

            def helper(args):
                return 1
            """,
            self.CLI_PATH,
        )
        assert rule_ids(result) == []

    def test_other_files_are_out_of_scope(self):
        source = """
            def _cmd_stats(args, scale):
                return 0
            """
        assert rule_ids(self.run_at(source, "src/repro/obs/runs.py")) == []
        assert rule_ids(self.run_at(source, "tests/test_cli.py")) == []

    def test_suppressible_on_the_def_line(self):
        result = self.run_at(
            """
            def _cmd_runs(args):  # lint: disable=unledgered-entrypoint -- read-only
                return 0
            """,
            self.CLI_PATH,
        )
        assert result.findings == []
        assert [f.rule_id for f in result.suppressed] == ["unledgered-entrypoint"]


class TestSuppression:
    def test_inline_disable_moves_finding_to_suppressed(self):
        result = run(
            """
            def sgd_step(param, lr):
                param.data = param.data - lr  # lint: disable=tape-mutation -- optimiser
            """
        )
        assert result.findings == []
        assert [f.rule_id for f in result.suppressed] == ["tape-mutation"]

    def test_disable_other_rule_does_not_suppress(self):
        result = run(
            """
            def sgd_step(param, lr):
                param.data = param.data - lr  # lint: disable=bare-except
            """
        )
        assert rule_ids(result) == ["tape-mutation"]

    def test_disable_all_and_comma_list(self):
        result = run(
            """
            import torch  # lint: disable=all
            import jax  # lint: disable=forbidden-import, global-rng
            """
        )
        assert result.findings == []
        assert len(result.suppressed) == 2

    def test_suppression_only_applies_to_its_line(self):
        result = run(
            """
            import torch  # lint: disable=forbidden-import
            import jax
            """
        )
        assert rule_ids(result) == ["forbidden-import"]
        assert result.findings[0].line == 3


class TestEngineAndReporters:
    def test_syntax_error_is_reported_not_raised(self):
        result = run("def broken(:\n")
        assert rule_ids(result) == ["syntax-error"]
        assert result.error_count == 1

    def test_render_text_lists_findings_and_summary(self):
        result = run("import torch\n")
        text = render_text(result)
        assert "snippet.py:1:0: error [forbidden-import]" in text
        assert "1 error(s)" in text

    def test_render_json_round_trips(self):
        result = run("import torch  # lint: disable=forbidden-import\n")
        payload = json.loads(render_json(result))
        assert payload["files"] == 1
        assert payload["errors"] == 0
        assert payload["findings"] == []
        assert payload["suppressed"][0]["rule"] == "forbidden-import"
