"""Seeded-defect regression tests for the dataflow checker.

``test_check_self.py`` proves the real autograd tree is clean; these
tests prove the checker would have *caught* the contract violations it
exists for. Each test writes a module with one injected defect — a
dropped input gradient, a backward that mutates a captured forward
array, an impure public kernel — and asserts the corresponding rule
fires with a nonzero exit code.
"""

from __future__ import annotations

import json
import textwrap

from repro.analysis import check_paths

# Defect 1: ``b`` is a differentiable parent but its gradient slot is
# ``None`` on every path — silent wrong gradients downstream.
DROPPED_GRAD = """
import numpy as np
from repro.autograd.tensor import Tensor, as_tensor


def bad_mul(a, b):
    a, b = as_tensor(a), as_tensor(b)

    def backward(g):
        return g * b.data, None

    return Tensor._from_op(a.data * b.data, (a, b), backward)
"""

# Defect 2: the backward closure writes through ``out``, the very array
# handed to the tape — corrupts the forward value other nodes may read.
INPLACE_ESCAPE = """
import numpy as np
from repro.autograd.tensor import Tensor, as_tensor


def bad_relu(x):
    x = as_tensor(x)
    mask = x.data > 0.0
    out = x.data * mask

    def backward(g):
        out *= 0.0
        return (g * mask,)

    return Tensor._from_op(out, (x,), backward)
"""

# Defect 3: a public kernel mutating its input without a
# ``@contract(mutates=...)`` declaration.
IMPURE_KERNEL = """
import numpy as np

__all__ = ["bad_scatter"]


def bad_scatter(values, segment_ids, num_segments):
    values[0] = 0.0
    out = np.zeros((num_segments,), dtype=np.float64)
    np.add.at(out, segment_ids, values)
    return out
"""


def _check(tmp_path, filename, source):
    path = tmp_path / filename
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return check_paths([path])


def _rule_symbols(check):
    return {(f.rule_id, f.symbol) for f in check.result.findings}


class TestSeededDefects:
    def test_dropped_gradient_is_caught(self, tmp_path):
        check = _check(tmp_path, "badops.py", DROPPED_GRAD)
        assert ("vjp-dropped-grad", "badops.bad_mul") in _rule_symbols(check)
        assert check.exit_code == 1

    def test_backward_mutating_captured_array_is_caught(self, tmp_path):
        check = _check(tmp_path, "badops.py", INPLACE_ESCAPE)
        rules = {f.rule_id for f in check.result.findings}
        assert "inplace-escape" in rules
        [finding] = [
            f for f in check.result.findings if f.rule_id == "inplace-escape"
        ]
        assert "out" in finding.message
        assert check.exit_code == 1

    def test_impure_public_kernel_is_caught(self, tmp_path):
        # The module is named kernels.py: purity applies to kernel
        # modules' public surface.
        check = _check(tmp_path, "kernels.py", IMPURE_KERNEL)
        assert ("impure-kernel", "kernels.bad_scatter") in _rule_symbols(check)
        assert check.exit_code == 1


class TestBaselineAndSuppression:
    def test_baseline_grandfathers_by_rule_path_symbol(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "findings": [
                        {
                            "rule": "vjp-dropped-grad",
                            "path": "badops.py",
                            "symbol": "badops.bad_mul",
                        }
                    ]
                }
            ),
            encoding="utf-8",
        )
        path = tmp_path / "badops.py"
        path.write_text(textwrap.dedent(DROPPED_GRAD), encoding="utf-8")
        check = check_paths([path], baseline_path=baseline)
        assert "vjp-dropped-grad" not in {
            f.rule_id for f in check.result.findings
        }
        assert [(f.rule_id, f.symbol) for f in check.baselined] == [
            ("vjp-dropped-grad", "badops.bad_mul")
        ]
        assert check.exit_code == 0

    def test_inline_suppression_uses_the_lint_syntax(self, tmp_path):
        # VJP findings anchor at the backward definition line.
        suppressed = DROPPED_GRAD.replace(
            "def backward(g):",
            "def backward(g):  # lint: disable=vjp-dropped-grad",
        )
        check = _check(tmp_path, "badops.py", suppressed)
        assert "vjp-dropped-grad" not in {
            f.rule_id for f in check.result.findings
        }
        assert "vjp-dropped-grad" in {f.rule_id for f in check.result.suppressed}
