"""The analyzer gates the repo: ``src/repro`` must stay lint-clean.

This is the tier-1 enforcement hook the tentpole asks for — every
future PR runs it via the default pytest suite, so an unsuppressed
error-severity finding anywhere under ``src/repro`` fails CI.
"""

from pathlib import Path

import repro
from repro.analysis import Severity, lint_paths

PACKAGE_ROOT = Path(repro.__file__).parent


def result():
    return lint_paths([PACKAGE_ROOT])


class TestSelfCheck:
    def test_source_tree_has_no_unsuppressed_errors(self):
        findings = result()
        errors = [f for f in findings.findings if f.severity is Severity.ERROR]
        assert errors == [], "\n" + "\n".join(f.render() for f in errors)

    def test_source_tree_has_no_warnings(self):
        # Warnings don't fail `repro lint`, but the tree currently has
        # none; keep it that way (or suppress with a justification).
        findings = result()
        warnings = [f for f in findings.findings if f.severity is Severity.WARNING]
        assert warnings == [], "\n" + "\n".join(f.render() for f in warnings)

    def test_every_suppression_is_an_intentional_tape_write(self):
        # The only pattern the seed tree legitimately suppresses is the
        # deliberate out-of-tape Tensor.data write (optimiser steps,
        # state restores, DARTS virtual steps, pre-forward bias init).
        # New suppressions of other rules deserve review — update this
        # list consciously.
        findings = result()
        assert {f.rule_id for f in findings.suppressed} <= {"tape-mutation"}

    def test_whole_package_was_scanned(self):
        findings = result()
        assert findings.files > 60  # the package holds ~75 modules
