"""The analyzer gates the repo: the whole tree must stay lint-clean.

This is the tier-1 enforcement hook the tentpole asks for — every
future PR runs it via the default pytest suite, so an unsuppressed
error-severity finding under ``src/repro``, ``tests``,
``benchmarks``, ``examples`` or ``scripts`` fails CI.
"""

from pathlib import Path

import repro
from repro.analysis import Severity, lint_paths

PACKAGE_ROOT = Path(repro.__file__).parent
REPO_ROOT = PACKAGE_ROOT.parent.parent
LINT_ROOTS = [
    PACKAGE_ROOT,
    REPO_ROOT / "tests",
    REPO_ROOT / "benchmarks",
    REPO_ROOT / "examples",
    REPO_ROOT / "scripts",
]

# Rules the tree legitimately suppresses, each pattern reviewed:
# - tape-mutation: deliberate out-of-tape Tensor.data writes (optimiser
#   steps, state restores, DARTS virtual steps, weight-sharing banks)
#   plus test fixtures that pin alpha logits / weights before a forward;
# - invalid-genotype: test fixtures constructing known-bad genotypes to
#   assert the Architecture validator rejects them.
# - unledgered-entrypoint: the two read-only CLI handlers (`repro runs`
#   must not write the ledger it reads; `repro report` only renders
#   existing telemetry) plus rule fixtures in the analysis tests.
# New suppressions of other rules deserve review — extend this set
# consciously.
ALLOWED_SUPPRESSIONS = {
    "tape-mutation", "invalid-genotype", "unledgered-entrypoint",
}


def result():
    return lint_paths(LINT_ROOTS)


class TestSelfCheck:
    def test_tree_has_no_unsuppressed_errors(self):
        findings = result()
        errors = [f for f in findings.findings if f.severity is Severity.ERROR]
        assert errors == [], "\n" + "\n".join(f.render() for f in errors)

    def test_tree_has_no_warnings(self):
        # Warnings don't fail `repro lint`, but the tree currently has
        # none; keep it that way (or suppress with a justification).
        findings = result()
        warnings = [f for f in findings.findings if f.severity is Severity.WARNING]
        assert warnings == [], "\n" + "\n".join(f.render() for f in warnings)

    def test_every_suppression_is_an_allowed_pattern(self):
        findings = result()
        assert {f.rule_id for f in findings.suppressed} <= ALLOWED_SUPPRESSIONS

    def test_library_timing_goes_through_obs(self):
        # The adhoc-timing rule keeps raw perf_counter pairs out of the
        # library; nothing in src/repro should even need a suppression.
        findings = result()
        timing = [
            f
            for f in findings.findings + findings.suppressed
            if f.rule_id == "adhoc-timing"
        ]
        assert timing == [], "\n" + "\n".join(f.render() for f in timing)

    def test_process_fanout_goes_through_parallel(self):
        # The raw-multiprocessing rule fences process primitives into
        # repro.parallel; the rest of the library must submit SearchJobs,
        # and nothing should need a suppression.
        findings = result()
        fanout = [
            f
            for f in findings.findings + findings.suppressed
            if f.rule_id == "raw-multiprocessing"
        ]
        assert fanout == [], "\n" + "\n".join(f.render() for f in fanout)

    def test_whole_tree_was_scanned(self):
        findings = result()
        # ~82 package modules + ~65 test modules + ~10 benchmarks.
        assert findings.files > 140
