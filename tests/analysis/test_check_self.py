"""The autograd tree gates itself: ``repro check`` must stay clean.

Tier-1 counterpart of ``test_self_check.py`` for the dataflow checker:
every PR that touches ``src/repro/autograd`` re-runs the VJP, capture,
escape and purity analyses here, so a dropped gradient or an impure
kernel fails the default pytest suite — not just ``scripts/ci.sh``.
"""

from pathlib import Path

import pytest

import repro
from repro.analysis import check_paths

AUTOGRAD = Path(repro.__file__).parent / "autograd"


@pytest.fixture(scope="module")
def check():
    return check_paths([AUTOGRAD])


class TestCheckSelf:
    def test_autograd_tree_has_no_live_findings(self, check):
        assert check.result.findings == [], "\n" + "\n".join(
            f.render() for f in check.result.findings
        )
        assert check.exit_code == 0

    def test_baseline_covers_exactly_the_known_debt(self, check):
        # The baseline is empty: the last grandfathered finding
        # (segment_attention_sum retaining the edge-gathered x_src copy)
        # was paid off by recomputing the gather in the backward. If
        # this list grows, either declare a contract or consciously
        # extend the baseline — with a tracking note.
        assert [(f.rule_id, f.symbol) for f in check.baselined] == []

    def test_capture_report_covers_the_tape_sites(self, check):
        symbols = {record["symbol"] for record in check.captures}
        # Spot-check ops known to retain forward intermediates.
        for expected in ("ops.matmul", "ops.softplus", "scatter.segment_softmax"):
            assert expected in symbols
        for record in check.captures:
            assert record["path"].endswith(".py")
