"""Genotype validation: op-table collection, Architecture literals and
the cross-file registry-consistency checks."""

import textwrap
from pathlib import Path

import repro
from repro.analysis import (
    GenotypeRule,
    Severity,
    analyze_source,
    collect_op_tables,
    consistency_findings,
)

SPACE_SRC = textwrap.dedent(
    """
    NODE_OPS = ("gcn", "gat")
    LAYER_OPS = ("concat",)
    SKIP_OPS = ("identity", "zero")
    """
)
REGISTRY_SRC = textwrap.dedent(
    """
    NODE_AGGREGATORS = {"gcn": object, "gat": object}
    LAYER_AGGREGATORS = {"concat": object}
    """
)


def tables():
    return collect_op_tables(
        [("space.py", SPACE_SRC), ("registry.py", REGISTRY_SRC)]
    )


def run(source: str):
    return analyze_source(
        textwrap.dedent(source), path="snippet.py", rules=[GenotypeRule(tables())]
    )


class TestOpTables:
    def test_collects_tuples_and_registry_keys(self):
        t = tables()
        assert t.names("NODE_OPS") == ("gcn", "gat")
        assert t.names("NODE_AGGREGATORS") == ("gcn", "gat")
        assert t.skip_names == ("identity", "zero")
        assert t.layer_names == ("concat",)

    def test_registry_wins_over_tuple_for_validation(self):
        t = collect_op_tables(
            [("a.py", "NODE_OPS = ('gcn',)\nNODE_AGGREGATORS = {'gcn': 1, 'extra': 2}\n")]
        )
        assert t.node_names == ("gcn", "extra")


class TestGenotypeRule:
    def test_unknown_node_op_flagged(self):
        result = run(
            """
            arch = Architecture(("gcn", "bogus"), ("identity", "zero"), "concat")
            """
        )
        assert [f.rule_id for f in result.findings] == ["invalid-genotype"]
        assert "bogus" in result.findings[0].message

    def test_arity_mismatch_flagged(self):
        result = run(
            """
            arch = Architecture(("gcn",), ("identity", "zero"), "concat")
            """
        )
        assert [f.rule_id for f in result.findings] == ["invalid-genotype"]
        assert "skip" in result.findings[0].message

    def test_unknown_skip_and_layer_ops_flagged(self):
        result = run(
            """
            arch = Architecture(
                node_aggregators=("gcn",),
                skip_connections=("residual",),
                layer_aggregator="attention",
            )
            """
        )
        ids = [f.rule_id for f in result.findings]
        assert ids == ["invalid-genotype", "invalid-genotype"]

    def test_valid_literal_is_clean(self):
        result = run(
            """
            arch = Architecture(("gcn", "gat"), ("identity", "zero"), "concat")
            """
        )
        assert result.findings == []

    def test_dynamic_arguments_are_skipped(self):
        result = run(
            """
            arch = Architecture(tuple(nodes), skips, layer_op)
            """
        )
        assert result.findings == []


class TestConsistency:
    def test_registry_drift_is_an_error(self):
        drifted = collect_op_tables(
            [
                ("space.py", "NODE_OPS = ('gcn', 'gat')\n"),
                ("registry.py", "NODE_AGGREGATORS = {'gcn': 1}\n"),
            ]
        )
        findings = consistency_findings(drifted)
        drift = [f for f in findings if f.rule_id == "registry-drift"]
        assert len(drift) == 1
        assert drift[0].severity is Severity.ERROR
        assert "gat" in drift[0].message

    def test_duplicate_names_in_tuple_flagged(self):
        duplicated = collect_op_tables(
            [("space.py", "SKIP_OPS = ('zero', 'zero')\n")]
        )
        findings = consistency_findings(duplicated)
        assert any(
            f.rule_id == "registry-drift" and "zero" in f.message for f in findings
        )

    def test_paper_size_deviation_is_a_warning(self):
        findings = consistency_findings(tables())
        sizes = [f for f in findings if f.rule_id == "paper-space-size"]
        # NODE_OPS has 2 ops (paper: 11) and LAYER_OPS has 1 (paper: 3).
        assert len(sizes) == 2
        assert all(f.severity is Severity.WARNING for f in sizes)


class TestRealSearchSpace:
    """The shipped declarations must validate against themselves."""

    def test_repo_tables_are_consistent(self):
        root = Path(repro.__file__).parent
        sources = [
            (str(p), p.read_text(encoding="utf-8"))
            for p in (
                root / "core" / "search_space.py",
                root / "gnn" / "aggregators.py",
                root / "gnn" / "layer_aggregators.py",
            )
        ]
        t = collect_op_tables(sources)
        assert t.names("NODE_OPS") is not None
        assert len(t.names("NODE_OPS")) == 11
        assert "sage-sum" in t.node_names
        assert consistency_findings(t) == []
