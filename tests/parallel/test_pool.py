"""WorkerPool robustness: merge order, retries, crashes, timeouts, spans.

Every parallel test here runs real spawn workers, so they share pools
where possible and keep job bodies tiny. The suite doubles as the
"never hang" contract: a wedged queue would stall one of these tests
forever, and the repo's test runner treats that as failure.
"""

import pytest

from repro.obs import InMemorySink, MetricsRegistry, get_tracer
from repro.parallel import (
    JobDispatchError,
    JobError,
    JobTimeoutError,
    SearchJob,
    WorkerCrashError,
    WorkerPool,
)


def metric(registry, name):
    """Read one counter/gauge value out of a registry snapshot."""
    snapshot = registry.snapshot()
    for family in ("counters", "gauges"):
        if name in snapshot[family]:
            return snapshot[family][name]["value"]
    raise KeyError(name)


def echo_jobs(values, **extra):
    return [
        SearchJob(
            job_id=i,
            fn="repro.parallel.testing:echo_job",
            kwargs={"value": value},
            **extra,
        )
        for i, value in enumerate(values)
    ]


class TestInlineMode:
    def test_workers_zero_runs_in_process(self):
        pool = WorkerPool(workers=0)
        assert pool.run(echo_jobs([5, 6, 7])) == [5, 6, 7]

    def test_results_align_with_input_order_not_job_id_order(self):
        pool = WorkerPool(workers=0)
        jobs = [
            SearchJob(job_id=2, fn="repro.parallel.testing:echo_job",
                      kwargs={"value": "c"}),
            SearchJob(job_id=0, fn="repro.parallel.testing:echo_job",
                      kwargs={"value": "a"}),
        ]
        assert pool.run(jobs) == ["c", "a"]

    def test_empty_batch(self):
        assert WorkerPool(workers=0).run([]) == []

    def test_duplicate_job_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate job ids"):
            WorkerPool(workers=0).run(
                [
                    SearchJob(job_id=1, fn="repro.parallel.testing:echo_job"),
                    SearchJob(job_id=1, fn="repro.parallel.testing:echo_job"),
                ]
            )

    def test_inline_exceptions_surface_unwrapped(self):
        # The CLI catches concrete types (e.g. NumericsAnomaly); the
        # in-process path must not wrap them in JobError.
        pool = WorkerPool(workers=0)
        with pytest.raises(ValueError, match="injected failure"):
            pool.run(
                [SearchJob(job_id=0, fn="repro.parallel.testing:raise_job")]
            )

    def test_inline_metrics(self):
        metrics = MetricsRegistry()
        WorkerPool(workers=0, metrics=metrics).run(echo_jobs([1, 2]))
        assert metric(metrics, "parallel.jobs") == 2
        assert metric(metrics, "parallel.utilization") == 1.0
        assert metric(metrics, "parallel.queue_depth") == 0

    def test_inline_per_worker_gauges_are_deterministic(self):
        # The in-process path is one always-busy pseudo-worker; its
        # stats are constants so seeded payloads stay byte-identical.
        metrics = MetricsRegistry()
        pool = WorkerPool(workers=0, metrics=metrics)
        pool.run(echo_jobs([1, 2, 3]))
        assert metric(metrics, "parallel.worker.0.busy_frac") == 1.0
        assert metric(metrics, "parallel.worker.0.tasks") == 3
        pool.run(echo_jobs([4]))
        # The tasks counter accumulates across batches.
        assert metric(metrics, "parallel.worker.0.tasks") == 4
        assert metric(metrics, "parallel.worker.0.busy_frac") == 1.0

    def test_inline_run_emits_pool_utilization_event(self):
        from repro.obs import events as events_mod

        recorder = events_mod.EventRecorder(label="pool-test")
        events_mod.install(recorder)
        try:
            WorkerPool(workers=0).run(echo_jobs([1, 2]))
        finally:
            events_mod.uninstall(recorder)
        pool_events = recorder.events("pool_utilization")
        assert len(pool_events) == 1
        payload = pool_events[0]["data"]
        assert payload["workers"] == 1
        assert payload["utilization"] == 1.0
        assert payload["per_worker"] == {"0": {"busy_frac": 1.0, "tasks": 2}}


class TestParallelMode:
    def test_merge_is_deterministic_and_complete(self):
        metrics = MetricsRegistry()
        with WorkerPool(workers=2, metrics=metrics) as pool:
            values = list(range(8))
            assert pool.run(echo_jobs(values)) == values
            # Re-running on live workers: same merge.
            assert pool.run(echo_jobs(values)) == values
        assert metric(metrics, "parallel.jobs") == 16
        assert metric(metrics, "parallel.workers") == 2
        assert 0.0 <= metric(metrics, "parallel.utilization") <= 1.0

    def test_unpicklable_job_raises_before_enqueue(self):
        with WorkerPool(workers=2) as pool:
            with pytest.raises(JobDispatchError, match="not\\s+picklable"):
                pool.run(
                    [
                        SearchJob(
                            job_id=0,
                            fn="repro.parallel.testing:echo_job",
                            kwargs={"value": lambda: None},
                        )
                    ]
                )
            # The pool survives a dispatch failure.
            assert pool.run(echo_jobs(["ok"])) == ["ok"]


class TestFaultInjection:
    def test_job_exception_retried_then_typed_error(self):
        metrics = MetricsRegistry()
        with WorkerPool(workers=2, metrics=metrics) as pool:
            with pytest.raises(JobError) as excinfo:
                pool.run(
                    [
                        SearchJob(
                            job_id=0,
                            fn="repro.parallel.testing:raise_job",
                            kwargs={"message": "injected failure"},
                            tag="raiser",
                        )
                    ]
                )
        error = excinfo.value
        assert error.error_type == "ValueError"
        assert error.tag == "raiser"
        assert "injected failure" in error.remote_traceback
        assert metric(metrics, "parallel.retries") == 1

    def test_flaky_job_succeeds_on_retry(self, tmp_path):
        marker = tmp_path / "flaky-raise.marker"
        metrics = MetricsRegistry()
        with WorkerPool(workers=2, metrics=metrics) as pool:
            results = pool.run(
                [
                    SearchJob(
                        job_id=0,
                        fn="repro.parallel.testing:flaky_raise_job",
                        kwargs={"marker_path": str(marker), "value": 99},
                    )
                ]
            )
        assert results == [99]
        assert metric(metrics, "parallel.retries") == 1

    def test_worker_crash_detected_and_retried(self):
        metrics = MetricsRegistry()
        with WorkerPool(workers=2, metrics=metrics) as pool:
            with pytest.raises(WorkerCrashError) as excinfo:
                pool.run(
                    [
                        SearchJob(
                            job_id=0,
                            fn="repro.parallel.testing:crash_job",
                            tag="crasher",
                        )
                    ]
                )
        assert excinfo.value.tag == "crasher"
        # Initial attempt + one retry, both crashed.
        assert metric(metrics, "parallel.crashes") == 2

    def test_crash_then_success_on_replacement_worker(self, tmp_path):
        marker = tmp_path / "flaky-crash.marker"
        metrics = MetricsRegistry()
        with WorkerPool(workers=2, metrics=metrics) as pool:
            results = pool.run(
                [
                    SearchJob(
                        job_id=0,
                        fn="repro.parallel.testing:flaky_crash_job",
                        kwargs={"marker_path": str(marker), "value": "alive"},
                    )
                ]
            )
        assert results == ["alive"]
        assert metric(metrics, "parallel.crashes") == 1
        assert metric(metrics, "parallel.jobs") == 1

    def test_timeout_kills_worker_and_raises(self):
        metrics = MetricsRegistry()
        with WorkerPool(workers=2, metrics=metrics, poll_s=0.05) as pool:
            with pytest.raises(JobTimeoutError) as excinfo:
                pool.run(
                    [
                        SearchJob(
                            job_id=0,
                            fn="repro.parallel.testing:sleep_job",
                            kwargs={"seconds": 30.0},
                            tag="sleeper",
                            timeout_s=0.5,
                        )
                    ]
                )
        assert excinfo.value.timeout_s == 0.5
        assert metric(metrics, "parallel.timeouts") == 2

    def test_healthy_jobs_complete_alongside_a_crash(self, tmp_path):
        marker = tmp_path / "mixed.marker"
        with WorkerPool(workers=2) as pool:
            jobs = echo_jobs([10, 20, 30])
            jobs.append(
                SearchJob(
                    job_id=3,
                    fn="repro.parallel.testing:flaky_crash_job",
                    kwargs={"marker_path": str(marker), "value": 40},
                )
            )
            assert pool.run(jobs) == [10, 20, 30, 40]


class TestSpanAdoption:
    def test_worker_spans_replay_under_worker_roots(self):
        sink = InMemorySink()
        tracer = get_tracer()
        with WorkerPool(workers=2) as pool:
            with tracer.collect(sink):
                pool.run(
                    [
                        SearchJob(
                            job_id=0,
                            fn="repro.parallel.testing:spanned_job",
                            kwargs={"value": 1},
                            tag="spanny",
                        )
                    ]
                )
        names = [span.name for span in sink.spans]
        assert "worker-0" in names or "worker-1" in names
        assert "job" in names
        assert "outer" in names and "inner" in names
        by_name = {span.name: span.to_dict() for span in sink.spans}
        root_name = "worker-0" if "worker-0" in by_name else "worker-1"
        root = by_name[root_name]
        # Replayed spans are re-parented under the synthetic root.
        assert by_name["job"]["parent"] == root["id"]
        assert by_name["outer"]["parent"] == by_name["job"]["id"]
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert root["attrs"]["tag"] == "spanny"

    def test_no_sinks_no_replay_overhead(self):
        # Without sinks the records are dropped; just a smoke check
        # that nothing breaks when the tracer has nowhere to dispatch.
        with WorkerPool(workers=2) as pool:
            assert pool.run(
                [
                    SearchJob(
                        job_id=0,
                        fn="repro.parallel.testing:spanned_job",
                        kwargs={"value": 2},
                    )
                ]
            ) == [2]


class TestShutdown:
    def test_shutdown_idempotent_and_reusable(self):
        pool = WorkerPool(workers=2)
        assert pool.run(echo_jobs([1])) == [1]
        pool.shutdown()
        pool.shutdown()
        # Workers respawn lazily on the next run.
        assert pool.run(echo_jobs([2])) == [2]
        pool.shutdown()
