"""Bit-identical merge: sequential vs parallel runs must agree exactly.

The orchestrator's core promise (DESIGN.md section 12): because every
job derives its seed from its identity and results merge by job id,
worker count is invisible in the output. These tests compare floats
with ``==`` — any drift is a real determinism bug, not tolerance
noise.
"""

import dataclasses

import pytest

from repro.autograd import kernels
from repro.experiments.config import SCALES
from repro.experiments.runners import run_sane
from repro.nas.encoding import sane_decision_space
from repro.nas.evaluation import ArchitectureEvaluator
from repro.nas.graphnas import graphnas_search
from repro.nas.random_search import random_search
from repro.nas.tpe import tpe_search
from repro.core.search_space import SearchSpace
from repro.parallel import WorkerPool
from repro.parallel.sweep import run_sweep
from repro.train.trainer import TrainConfig


def small_scale(**overrides):
    base = dataclasses.replace(
        SCALES["smoke"],
        search_seeds=2,
        repeats=2,
        search_epochs=4,
        train_epochs=12,
        train_patience=12,
        nas_candidates=4,
    )
    return dataclasses.replace(base, **overrides) if overrides else base


def evaluator_for(tiny_graph, seed=0):
    return ArchitectureEvaluator(
        sane_decision_space(SearchSpace(num_layers=3)),
        tiny_graph,
        train_config=TrainConfig(epochs=10, patience=10),
        hidden_dim=8,
        seed=seed,
    )


def record_key(record):
    return (record.indices, record.val_score, record.test_score)


class TestRunSaneAcrossWorkerCounts:
    def test_workers_two_matches_inline(self, tiny_graph):
        scale = small_scale()
        inline = run_sane(tiny_graph, scale, seed=3, workers=0)
        with WorkerPool(workers=2) as pool:
            fanned = run_sane(tiny_graph, scale, seed=3, pool=pool)
        assert fanned.architecture == inline.architecture
        assert fanned.val_scores == inline.val_scores
        assert fanned.test_scores == inline.test_scores
        assert [r.architecture for r in fanned.search_results] == [
            r.architecture for r in inline.search_results
        ]


class TestEvaluatorBatchAcrossWorkerCounts:
    @pytest.mark.parametrize("backend", kernels.BACKENDS)
    def test_random_search_bit_identical(self, tiny_graph, backend):
        with kernels.use_backend(backend):
            sequential = random_search(
                evaluator_for(tiny_graph), 4, seed=1
            )
            with WorkerPool(workers=2) as pool:
                parallel = random_search(
                    evaluator_for(tiny_graph), 4, seed=1, pool=pool
                )
        assert [record_key(r) for r in parallel.records] == [
            record_key(r) for r in sequential.records
        ]
        assert record_key(parallel.best) == record_key(sequential.best)

    def test_tpe_batched_rounds_bit_identical(self, tiny_graph):
        sequential = tpe_search(
            evaluator_for(tiny_graph), 4, seed=2, batch=2
        )
        with WorkerPool(workers=2) as pool:
            parallel = tpe_search(
                evaluator_for(tiny_graph), 4, seed=2, batch=2, pool=pool
            )
        assert [record_key(r) for r in parallel.records] == [
            record_key(r) for r in sequential.records
        ]

    def test_graphnas_rollout_batch_bit_identical(self, tiny_graph):
        sequential = graphnas_search(
            evaluator_for(tiny_graph), 4, seed=4,
            num_final_samples=2, rollout_batch=2,
        )
        with WorkerPool(workers=2) as pool:
            parallel = graphnas_search(
                evaluator_for(tiny_graph), 4, seed=4,
                num_final_samples=2, rollout_batch=2, pool=pool,
            )
        assert [record_key(r) for r in parallel.records] == [
            record_key(r) for r in sequential.records
        ]
        assert record_key(parallel.best) == record_key(sequential.best)

    def test_rollout_batch_one_matches_classic_sequential(self, tiny_graph):
        # rollout_batch=1 must be the pre-batching algorithm exactly.
        classic = graphnas_search(
            evaluator_for(tiny_graph), 3, seed=5, num_final_samples=2
        )
        batched = graphnas_search(
            evaluator_for(tiny_graph), 3, seed=5, num_final_samples=2,
            rollout_batch=1,
        )
        assert [record_key(r) for r in batched.records] == [
            record_key(r) for r in classic.records
        ]


class TestSweepDigest:
    @pytest.mark.parametrize("backend", kernels.BACKENDS)
    def test_digest_identical_across_worker_counts(self, backend):
        scale = small_scale(search_seeds=1, repeats=1, nas_candidates=2)
        with kernels.use_backend(backend):
            inline = run_sweep(
                ["cora"], scale, seed=0, methods=("random",), workers=0
            )
            fanned = run_sweep(
                ["cora"], scale, seed=0, methods=("random",), workers=2
            )
        assert inline.digest() == fanned.digest()
        assert inline.cells[0].test_scores == fanned.cells[0].test_scores

    def test_digest_changes_with_seed(self):
        scale = small_scale(search_seeds=1, repeats=1, nas_candidates=2)
        a = run_sweep(["cora"], scale, seed=0, methods=("random",))
        b = run_sweep(["cora"], scale, seed=1, methods=("random",))
        assert a.digest() != b.digest()
