"""SearchJob plumbing: seed derivation, fn resolution, error types."""

import dataclasses

import numpy as np
import pytest

from repro.parallel import (
    JobDispatchError,
    JobError,
    JobTimeoutError,
    ParallelError,
    SearchJob,
    WorkerCrashError,
    derive_rng,
    derive_seed,
    execute_job,
    resolve_job_fn,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, 3) == derive_seed(7, 3)

    def test_varies_with_job_id(self):
        seeds = {derive_seed(0, job_id) for job_id in range(100)}
        assert len(seeds) == 100

    def test_varies_with_base_seed(self):
        assert derive_seed(0, 5) != derive_seed(1, 5)

    def test_no_additive_aliasing(self):
        # The whole point of SeedSequence spawning over `base + job`:
        # (base=0, job=1) and (base=1, job=0) must not collide.
        assert derive_seed(0, 1) != derive_seed(1, 0)

    def test_fits_in_uint32(self):
        for job_id in range(20):
            assert 0 <= derive_seed(123, job_id) < 2**32

    def test_derive_rng_reproducible(self):
        a = derive_rng(5, 2).integers(1 << 30, size=4)
        b = derive_rng(5, 2).integers(1 << 30, size=4)
        assert np.array_equal(a, b)


class TestResolveJobFn:
    def test_resolves_module_level_function(self):
        fn = resolve_job_fn("repro.parallel.testing:echo_job")
        assert fn("x") == "x"

    def test_rejects_missing_colon(self):
        with pytest.raises(ValueError, match="module:function"):
            resolve_job_fn("repro.parallel.testing.echo_job")

    def test_rejects_unknown_module(self):
        with pytest.raises(ModuleNotFoundError):
            resolve_job_fn("repro.parallel.nonexistent:echo_job")

    def test_rejects_unknown_attribute(self):
        with pytest.raises(ValueError, match="does not name a callable"):
            resolve_job_fn("repro.parallel.testing:missing_job")


class TestSearchJob:
    def test_frozen(self):
        job = SearchJob(job_id=0, fn="repro.parallel.testing:echo_job")
        with pytest.raises(dataclasses.FrozenInstanceError):
            job.job_id = 1

    def test_execute_job_runs_kwargs(self):
        job = SearchJob(
            job_id=0,
            fn="repro.parallel.testing:echo_job",
            kwargs={"value": 41},
        )
        assert execute_job(job) == 41


class TestErrorHierarchy:
    def test_all_errors_are_parallel_errors(self):
        for etype in (JobDispatchError, JobError, JobTimeoutError, WorkerCrashError):
            assert issubclass(etype, ParallelError)
        assert issubclass(ParallelError, RuntimeError)

    def test_job_error_carries_provenance(self):
        error = JobError(3, "cell-a", "ValueError", "boom", "Traceback ...")
        assert error.job_id == 3
        assert error.tag == "cell-a"
        assert error.error_type == "ValueError"
        assert "boom" in str(error)

    def test_timeout_error_message(self):
        error = JobTimeoutError(1, "slow", 0.5)
        assert "0.5" in str(error)
        assert error.timeout_s == 0.5

    def test_crash_error_exitcode(self):
        error = WorkerCrashError(2, "crashy", 3)
        assert error.exitcode == 3
