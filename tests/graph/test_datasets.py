"""Named benchmark datasets and split protocol."""

import numpy as np
import pytest

from repro.graph.data import Graph, MultiGraphDataset
from repro.graph.datasets import (
    ALL_DATASETS,
    TRANSDUCTIVE_DATASETS,
    dataset_statistics,
    load_dataset,
    transductive_split,
)


class TestSplits:
    def test_masks_are_disjoint_and_cover(self, tiny_graph):
        total = (
            tiny_graph.train_mask.astype(int)
            + tiny_graph.val_mask.astype(int)
            + tiny_graph.test_mask.astype(int)
        )
        assert (total == 1).all()

    def test_fractions_roughly_60_20_20(self, tiny_graph):
        n = tiny_graph.num_nodes
        assert abs(tiny_graph.train_mask.mean() - 0.6) < 0.1
        assert abs(tiny_graph.val_mask.mean() - 0.2) < 0.1

    def test_stratified_every_class_in_train(self, tiny_graph):
        train_classes = set(tiny_graph.labels[tiny_graph.train_mask])
        assert train_classes == set(np.unique(tiny_graph.labels))

    def test_rejects_multilabel(self):
        g = Graph(
            edge_index=np.array([[0], [1]]),
            features=np.ones((2, 2)),
            labels=np.eye(2, dtype=np.int64),
        )
        with pytest.raises(ValueError, match="single-label"):
            transductive_split(g, np.random.default_rng(0))


class TestLoadDataset:
    @pytest.mark.parametrize("name", TRANSDUCTIVE_DATASETS)
    def test_transductive_datasets(self, name):
        g = load_dataset(name, scale=0.3)
        assert isinstance(g, Graph)
        assert g.train_mask is not None
        assert g.name == name

    def test_ppi_is_inductive(self):
        ds = load_dataset("ppi", scale=0.5)
        assert isinstance(ds, MultiGraphDataset)
        assert len(ds.val_graphs) >= 1
        assert len(ds.test_graphs) >= 1

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_dataset("imagenet")

    def test_deterministic_in_seed(self):
        a = load_dataset("cora", seed=4, scale=0.3)
        b = load_dataset("cora", seed=4, scale=0.3)
        np.testing.assert_allclose(a.features, b.features)
        np.testing.assert_array_equal(a.train_mask, b.train_mask)

    def test_seed_changes_data(self):
        a = load_dataset("cora", seed=1, scale=0.3)
        b = load_dataset("cora", seed=2, scale=0.3)
        assert not np.array_equal(a.labels, b.labels)

    def test_scale_changes_size(self):
        small = load_dataset("cora", scale=0.3)
        large = load_dataset("cora", scale=1.0)
        assert large.num_nodes > small.num_nodes

    def test_class_counts_match_paper(self):
        assert load_dataset("cora", scale=0.3).num_classes == 7
        assert load_dataset("citeseer", scale=0.3).num_classes == 6
        assert load_dataset("pubmed", scale=0.3).num_classes == 3

    def test_ppi_feature_projection_shared_across_graphs(self):
        """Same membership pattern → similar features across graphs."""
        ds = load_dataset("ppi", scale=0.5)
        g1, g2 = ds.train_graphs[0], ds.test_graphs[0]
        # Compute least-squares community->feature maps for each graph;
        # they must agree because the projection is shared.
        map1 = np.linalg.lstsq(g1.labels.astype(float), g1.features, rcond=None)[0]
        map2 = np.linalg.lstsq(g2.labels.astype(float), g2.features, rcond=None)[0]
        correlation = np.corrcoef(map1.ravel(), map2.ravel())[0, 1]
        # Independent projections would correlate near 0; the shared
        # projection survives the heavy feature noise at ~0.7-0.8.
        assert correlation > 0.5


class TestStatistics:
    def test_rows_for_all_datasets(self):
        rows = dataset_statistics(scale=0.3)
        assert len(rows) == len(ALL_DATASETS)
        names = {r["dataset"] for r in rows}
        assert names == set(ALL_DATASETS)

    def test_row_fields(self):
        rows = dataset_statistics(scale=0.3)
        for row in rows:
            assert row["N"] > 0
            assert row["E"] > 0
            assert row["F"] > 0
            assert row["C"] > 1
