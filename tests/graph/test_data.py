"""Graph and MultiGraphDataset container semantics."""

import numpy as np
import pytest

from repro.graph.data import Graph, MultiGraphDataset


def small_graph(**overrides):
    kwargs = dict(
        edge_index=np.array([[0, 1], [1, 0]]),
        features=np.ones((3, 4)),
        labels=np.array([0, 1, 1]),
        name="g",
    )
    kwargs.update(overrides)
    return Graph(**kwargs)


class TestGraphValidation:
    def test_basic_properties(self):
        g = small_graph()
        assert g.num_nodes == 3
        assert g.num_edges == 2
        assert g.num_features == 4
        assert g.num_classes == 2
        assert not g.is_multilabel

    def test_rejects_bad_edge_index_shape(self):
        with pytest.raises(ValueError, match=r"\(2, E\)"):
            small_graph(edge_index=np.array([0, 1, 2]))

    def test_rejects_out_of_range_edges(self):
        with pytest.raises(ValueError, match="beyond"):
            small_graph(edge_index=np.array([[0], [99]]))

    def test_rejects_1d_features(self):
        with pytest.raises(ValueError, match=r"\(N, F\)"):
            small_graph(features=np.ones(3))

    def test_multilabel_detection(self):
        g = small_graph(labels=np.eye(3, dtype=np.int64))
        assert g.is_multilabel
        assert g.num_classes == 3

    def test_num_classes_without_labels_raises(self):
        g = small_graph(labels=None)
        with pytest.raises(ValueError, match="labels"):
            g.num_classes

    def test_src_dst_views(self):
        g = small_graph()
        np.testing.assert_array_equal(g.src, [0, 1])
        np.testing.assert_array_equal(g.dst, [1, 0])

    def test_mask_accessor_raises_when_missing(self):
        with pytest.raises(ValueError, match="train"):
            small_graph().mask("train")

    def test_mask_accessor_returns_mask(self):
        mask = np.array([True, False, True])
        g = small_graph(train_mask=mask)
        np.testing.assert_array_equal(g.mask("train"), mask)

    def test_replace_is_functional(self):
        g = small_graph()
        g2 = g.replace(name="other")
        assert g.name == "g"
        assert g2.name == "other"

    def test_repr(self):
        assert "N=3" in repr(small_graph())


class TestMultiGraphDataset:
    def make(self):
        graphs = [
            small_graph(labels=np.eye(3, dtype=np.int64), name=f"g{i}")
            for i in range(4)
        ]
        return MultiGraphDataset(graphs[:2], graphs[2:3], graphs[3:], name="ds")

    def test_properties(self):
        ds = self.make()
        assert ds.num_features == 4
        assert ds.num_classes == 3
        assert len(ds.all_graphs) == 4

    def test_totals(self):
        nodes, edges = self.make().totals()
        assert nodes == 12
        assert edges == 8

    def test_requires_training_graphs(self):
        g = small_graph()
        with pytest.raises(ValueError, match="training graph"):
            MultiGraphDataset([], [g], [g])

    def test_rejects_mixed_feature_dims(self):
        a = small_graph()
        b = small_graph(features=np.ones((3, 7)))
        with pytest.raises(ValueError, match="feature dims"):
            MultiGraphDataset([a], [b], [a])

    def test_repr(self):
        assert "2/1/1" in repr(self.make())
