"""Synthetic graph generators: determinism and signal properties."""

import numpy as np
import pytest

from repro.graph.generators import citation_graph, community_multilabel_graph


def make_citation(seed=0, **overrides):
    kwargs = dict(
        num_nodes=200,
        num_classes=5,
        num_features=40,
        rng=np.random.default_rng(seed),
        avg_degree=4.0,
        homophily=0.85,
        feature_signal=0.6,
        words_per_node=8,
    )
    kwargs.update(overrides)
    return citation_graph(**kwargs)


class TestCitationGraph:
    def test_deterministic_given_seed(self):
        a, b = make_citation(3), make_citation(3)
        np.testing.assert_array_equal(a.edge_index, b.edge_index)
        np.testing.assert_allclose(a.features, b.features)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a, b = make_citation(1), make_citation(2)
        assert not np.array_equal(a.labels, b.labels)

    def test_undirected(self):
        g = make_citation()
        pairs = set(map(tuple, g.edge_index.T))
        assert all((v, u) in pairs for u, v in pairs)

    def test_homophily_above_random(self):
        g = make_citation()
        same = (g.labels[g.src] == g.labels[g.dst]).mean()
        assert same > 2.0 / g.num_classes

    def test_homophily_knob_monotone(self):
        low = make_citation(homophily=0.3)
        high = make_citation(homophily=0.95)
        low_h = (low.labels[low.src] == low.labels[low.dst]).mean()
        high_h = (high.labels[high.src] == high.labels[high.dst]).mean()
        assert high_h > low_h

    def test_features_row_normalised(self):
        g = make_citation()
        sums = g.features.sum(axis=1)
        positive = sums[sums > 0]
        np.testing.assert_allclose(positive, 1.0)

    def test_features_correlate_with_class(self):
        g = make_citation(feature_signal=0.9)
        # Class centroids should be more similar within than across classes.
        centroids = np.stack(
            [g.features[g.labels == c].mean(axis=0) for c in range(5)]
        )
        sim = centroids @ centroids.T
        diag = np.diag(sim).mean()
        off = sim[~np.eye(5, dtype=bool)].mean()
        assert diag > off

    def test_rejects_single_class(self):
        with pytest.raises(ValueError, match="two classes"):
            make_citation(num_classes=1)

    def test_no_self_loops(self):
        g = make_citation()
        assert (g.src != g.dst).all()


def make_community(seed=0, **overrides):
    kwargs = dict(
        num_nodes=100,
        num_communities=6,
        num_features=20,
        rng=np.random.default_rng(seed),
    )
    kwargs.update(overrides)
    return community_multilabel_graph(**kwargs)


class TestCommunityGraph:
    def test_multilabel_shape(self):
        g = make_community()
        assert g.labels.shape == (100, 6)
        assert g.is_multilabel

    def test_every_node_has_a_community(self):
        g = make_community()
        assert (g.labels.sum(axis=1) >= 1).all()

    def test_deterministic(self):
        a, b = make_community(5), make_community(5)
        np.testing.assert_array_equal(a.edge_index, b.edge_index)
        np.testing.assert_allclose(a.features, b.features)

    def test_shared_projection_shares_feature_semantics(self):
        rng = np.random.default_rng(0)
        projection = rng.normal(size=(6, 20))
        a = community_multilabel_graph(
            80, 6, 20, np.random.default_rng(1), projection=projection
        )
        b = community_multilabel_graph(
            80, 6, 20, np.random.default_rng(2), projection=projection
        )
        # Same membership row implies similar (noisy) feature direction.
        row_a = np.flatnonzero((a.labels == a.labels[0]).all(axis=1))
        assert len(row_a) >= 1

    def test_projection_shape_validated(self):
        with pytest.raises(ValueError, match="projection"):
            make_community(projection=np.zeros((2, 2)))

    def test_features_unit_norm(self):
        g = make_community()
        norms = np.linalg.norm(g.features, axis=1)
        np.testing.assert_allclose(norms, 1.0, atol=1e-9)

    def test_community_edges_dominate(self):
        g = make_community(intra_degree=8.0, noise_degree=0.5)
        shares = (g.labels[g.src] * g.labels[g.dst]).sum(axis=1) > 0
        assert shares.mean() > 0.6
