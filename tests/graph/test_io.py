"""Graph serialisation round-trips."""

import numpy as np

from repro.graph.io import load_graph, load_multigraph, save_graph, save_multigraph


class TestGraphRoundtrip:
    def test_full_graph(self, tiny_graph, tmp_path):
        path = tmp_path / "graph.npz"
        save_graph(tiny_graph, path)
        loaded = load_graph(path)
        np.testing.assert_array_equal(loaded.edge_index, tiny_graph.edge_index)
        np.testing.assert_allclose(loaded.features, tiny_graph.features)
        np.testing.assert_array_equal(loaded.labels, tiny_graph.labels)
        np.testing.assert_array_equal(loaded.train_mask, tiny_graph.train_mask)
        assert loaded.name == tiny_graph.name

    def test_unlabelled_graph(self, path_graph, tmp_path):
        unlabelled = path_graph.replace(labels=None)
        path = tmp_path / "plain.npz"
        save_graph(unlabelled, path)
        loaded = load_graph(path)
        assert loaded.labels is None
        assert loaded.train_mask is None


class TestMultigraphRoundtrip:
    def test_dataset(self, tiny_ppi, tmp_path):
        path = tmp_path / "ppi.npz"
        save_multigraph(tiny_ppi, path)
        loaded = load_multigraph(path)
        assert len(loaded.train_graphs) == len(tiny_ppi.train_graphs)
        assert len(loaded.test_graphs) == len(tiny_ppi.test_graphs)
        assert loaded.name == tiny_ppi.name
        original = tiny_ppi.train_graphs[0]
        restored = loaded.train_graphs[0]
        np.testing.assert_allclose(restored.features, original.features)
        np.testing.assert_array_equal(restored.labels, original.labels)

    def test_loaded_dataset_is_trainable(self, tiny_ppi, tmp_path):
        from repro.gnn import build_baseline
        from repro.train import TrainConfig, fit

        path = tmp_path / "ppi.npz"
        save_multigraph(tiny_ppi, path)
        loaded = load_multigraph(path)
        model = build_baseline(
            "gcn", loaded.num_features, loaded.num_classes,
            np.random.default_rng(0), hidden_dim=8,
        )
        result = fit(model, loaded, TrainConfig(epochs=3, patience=3))
        assert result.best_epoch >= 0
