"""Graph preprocessing utilities and their invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.utils import (
    add_self_loops,
    coalesce,
    degrees,
    gcn_edge_weights,
    padded_neighbor_index,
    remove_self_loops,
    to_undirected,
)


def random_edges(num_nodes, num_edges, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, num_nodes, size=(2, num_edges))


class TestCoalesce:
    def test_removes_duplicates(self):
        edges = np.array([[0, 0, 1], [1, 1, 2]])
        out = coalesce(edges, 3)
        assert out.shape == (2, 2)

    def test_empty_edges(self):
        out = coalesce(np.zeros((2, 0), dtype=np.int64), 3)
        assert out.shape == (2, 0)

    def test_sorted_by_destination(self):
        edges = np.array([[2, 0], [2, 0]])
        out = coalesce(edges, 3)
        assert out[1, 0] <= out[1, 1]


class TestUndirected:
    def test_mirrors_edges(self):
        edges = np.array([[0], [1]])
        out = to_undirected(edges, 2)
        pairs = set(map(tuple, out.T))
        assert pairs == {(0, 1), (1, 0)}

    def test_idempotent(self):
        edges = random_edges(10, 30)
        once = to_undirected(edges, 10)
        twice = to_undirected(once, 10)
        assert once.shape == twice.shape


class TestSelfLoops:
    def test_add_exactly_one_per_node(self):
        edges = np.array([[0, 0], [0, 1]])  # existing self-loop at 0
        out = add_self_loops(edges, 3)
        loops = out[:, out[0] == out[1]]
        assert loops.shape[1] == 3

    def test_remove(self):
        edges = np.array([[0, 1, 2], [0, 2, 2]])
        out = remove_self_loops(edges)
        assert out.shape[1] == 1

    def test_isolated_nodes_get_loops(self):
        out = add_self_loops(np.zeros((2, 0), dtype=np.int64), 4)
        assert out.shape == (2, 4)


class TestDegrees:
    def test_in_out(self):
        edges = np.array([[0, 0, 1], [1, 2, 2]])
        np.testing.assert_allclose(degrees(edges, 3, "in"), [0, 1, 2])
        np.testing.assert_allclose(degrees(edges, 3, "out"), [2, 1, 0])


class TestGCNWeights:
    def test_symmetric_normalisation_values(self):
        # Path 0-1 with self-loops: degrees are 2, 2.
        edges = add_self_loops(np.array([[0, 1], [1, 0]]), 2)
        weights = gcn_edge_weights(edges, 2)
        np.testing.assert_allclose(weights, 0.5)

    def test_matches_dense_formula(self):
        edges = to_undirected(random_edges(8, 15, seed=1), 8)
        edges = add_self_loops(edges, 8)
        weights = gcn_edge_weights(edges, 8)
        dense = np.zeros((8, 8))
        dense[edges[1], edges[0]] = weights
        adj = np.zeros((8, 8))
        adj[edges[1], edges[0]] = 1.0
        deg = adj.sum(axis=1)
        expected = adj / np.sqrt(np.outer(deg, deg))
        np.testing.assert_allclose(dense, expected, atol=1e-12)

    @given(st.integers(2, 20), st.integers(1, 60))
    @settings(max_examples=20, deadline=None)
    def test_weights_positive_and_bounded(self, num_nodes, num_edges):
        edges = to_undirected(random_edges(num_nodes, num_edges, seed=7), num_nodes)
        edges = add_self_loops(edges, num_nodes)
        weights = gcn_edge_weights(edges, num_nodes)
        assert (weights > 0).all()
        assert (weights <= 1.0 + 1e-12).all()


class TestPaddedNeighbors:
    def test_shapes_and_mask(self):
        edges = np.array([[1, 2, 3], [0, 0, 0]])  # node 0 has 3 in-neighbors
        rng = np.random.default_rng(0)
        index, mask = padded_neighbor_index(edges, 4, k=2, rng=rng)
        assert index.shape == (4, 2)
        assert mask[0].all()  # subsampled to 2 of 3
        assert not mask[1].any()

    def test_padding_points_to_self(self):
        edges = np.zeros((2, 0), dtype=np.int64)
        rng = np.random.default_rng(0)
        index, mask = padded_neighbor_index(edges, 3, k=2, rng=rng)
        np.testing.assert_array_equal(index[:, 0], [0, 1, 2])
        assert not mask.any()

    def test_lists_actual_neighbors(self):
        edges = np.array([[5], [2]])
        rng = np.random.default_rng(0)
        index, mask = padded_neighbor_index(edges, 6, k=3, rng=rng)
        assert index[2, 0] == 5
        assert mask[2, 0]
        assert not mask[2, 1:].any()

    def test_subsampling_uses_real_neighbors_only(self):
        edges = np.array([[1, 2, 3, 4, 5], [0, 0, 0, 0, 0]])
        rng = np.random.default_rng(0)
        index, mask = padded_neighbor_index(edges, 6, k=3, rng=rng)
        assert mask[0].all()
        assert set(index[0]) <= {1, 2, 3, 4, 5}
        assert len(set(index[0])) == 3  # sampled without replacement
