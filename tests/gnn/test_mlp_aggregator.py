"""MLP node aggregator and the Table X search space."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.gnn.common import GraphCache
from repro.gnn.mlp_aggregator import (
    MLP_DEPTHS,
    MLP_WIDTHS,
    MLPAggregator,
    MLPGNNModel,
    mlp_space,
)


class TestMLPAggregator:
    def test_output_shape(self, tiny_graph, rng):
        agg = MLPAggregator(tiny_graph.num_features, 6, rng, width=16, depth=2)
        out = agg(Tensor(tiny_graph.features), GraphCache(tiny_graph))
        assert out.shape == (tiny_graph.num_nodes, 6)

    def test_depth_one_is_single_linear(self, rng):
        agg = MLPAggregator(4, 6, rng, width=32, depth=1)
        assert len(agg.mlp.layers) == 1

    def test_depth_validated(self, rng):
        with pytest.raises(ValueError, match="depth"):
            MLPAggregator(4, 6, rng, depth=0)

    def test_aggregates_over_closed_neighborhood(self, rng, path_graph):
        agg = MLPAggregator(2, 3, rng, width=8, depth=1)
        cache = GraphCache(path_graph)
        out = agg(Tensor(path_graph.features), cache)
        # Node 0's closed neighborhood: {0, 1}.
        manual = agg.mlp(Tensor((path_graph.features[0] + path_graph.features[1])[None]))
        np.testing.assert_allclose(out.data[0], manual.data[0], atol=1e-10)


class TestMLPSpace:
    def test_sizes(self):
        assert len(MLP_WIDTHS) == 4
        assert len(MLP_DEPTHS) == 3
        assert len(mlp_space(1)) == 12
        assert len(mlp_space(3)) == 12**3


class TestMLPGNNModel:
    def test_forward_shape(self, tiny_graph, rng):
        model = MLPGNNModel(
            tiny_graph.num_features,
            8,
            tiny_graph.num_classes,
            [(16, 2), (8, 1), (32, 3)],
            rng,
        )
        out = model(tiny_graph.features, GraphCache(tiny_graph))
        assert out.shape == (tiny_graph.num_nodes, tiny_graph.num_classes)

    def test_requires_specs(self, rng):
        with pytest.raises(ValueError, match="layer spec"):
            MLPGNNModel(4, 8, 2, [], rng)

    def test_specs_recorded(self, rng):
        model = MLPGNNModel(4, 8, 2, [(8, 1)], rng)
        assert model.layer_specs == [(8, 1)]
