"""Hypothesis property tests for GNN layers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor
from repro.gnn.aggregators import create_node_aggregator
from repro.gnn.common import GraphCache
from repro.graph.data import Graph
from repro.graph.utils import to_undirected

FAST_OPS = ("gcn", "gat", "gin", "sage-mean", "sage-sum", "sage-max")


def random_graph(num_nodes, num_edges, num_features, seed):
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, num_nodes, size=(2, max(1, num_edges)))
    keep = edges[0] != edges[1]
    if not keep.any():
        edges = np.array([[0], [min(1, num_nodes - 1)]])
    else:
        edges = edges[:, keep]
    return Graph(
        edge_index=to_undirected(edges, num_nodes),
        features=rng.normal(size=(num_nodes, num_features)),
    )


@given(
    st.sampled_from(FAST_OPS),
    st.integers(3, 20),
    st.integers(1, 40),
    st.integers(0, 20),
)
@settings(max_examples=40, deadline=None)
def test_aggregator_output_finite_and_shaped(op, num_nodes, num_edges, seed):
    graph = random_graph(num_nodes, num_edges, 4, seed)
    agg = create_node_aggregator(op, 4, 6, np.random.default_rng(0))
    out = agg(Tensor(graph.features), GraphCache(graph))
    assert out.shape == (num_nodes, 6)
    assert np.isfinite(out.data).all()


@given(st.sampled_from(FAST_OPS), st.integers(0, 10))
@settings(max_examples=30, deadline=None)
def test_aggregator_backward_produces_finite_grads(op, seed):
    graph = random_graph(8, 14, 3, seed)
    agg = create_node_aggregator(op, 3, 4, np.random.default_rng(1))
    x = Tensor(graph.features, requires_grad=True)
    agg(x, GraphCache(graph)).sum().backward()
    assert x.grad is not None
    assert np.isfinite(x.grad).all()


@given(st.integers(0, 10))
@settings(max_examples=20, deadline=None)
def test_gcn_feature_scaling_homogeneity(seed):
    """GCN without bias is 1-homogeneous in its input features."""
    graph = random_graph(10, 20, 3, seed)
    agg = create_node_aggregator("gcn", 3, 4, np.random.default_rng(2))
    agg.lin.bias.data[:] = 0.0  # lint: disable=tape-mutation -- fixture zeroes the bias before the forward under test
    cache = GraphCache(graph)
    out1 = agg(Tensor(graph.features), cache).data
    out3 = agg(Tensor(3.0 * graph.features), cache).data
    np.testing.assert_allclose(out3, 3.0 * out1, atol=1e-8)


@given(st.integers(0, 10))
@settings(max_examples=10, deadline=None)
def test_gat_attention_is_scale_free_in_uniform_case(seed):
    """On constant features every GAT output row is identical."""
    rng = np.random.default_rng(seed)
    graph = random_graph(8, 16, 3, seed)
    constant = Graph(
        edge_index=graph.edge_index, features=np.ones_like(graph.features)
    )
    agg = create_node_aggregator("gat", 3, 4, np.random.default_rng(3))
    out = agg(Tensor(constant.features), GraphCache(constant)).data
    np.testing.assert_allclose(out, np.tile(out[0], (len(out), 1)), atol=1e-9)
