"""The 3 layer aggregators (CONCAT / MAX / LSTM)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core.search_space import LAYER_OPS
from repro.gnn.layer_aggregators import (
    LAYER_AGGREGATORS,
    ConcatLayerAggregator,
    LSTMLayerAggregator,
    MaxLayerAggregator,
    create_layer_aggregator,
)


def layer_outputs(num_layers=3, num_nodes=7, dim=4, seed=0):
    rng = np.random.default_rng(seed)
    return [Tensor(rng.normal(size=(num_nodes, dim))) for __ in range(num_layers)]


class TestRegistry:
    def test_matches_paper_set(self):
        assert set(LAYER_OPS) == set(LAYER_AGGREGATORS) == {"concat", "max", "lstm"}

    def test_unknown_raises(self, rng):
        with pytest.raises(ValueError, match="unknown layer aggregator"):
            create_layer_aggregator("mean", 3, 4, rng)


class TestConcat:
    def test_output_dim(self, rng):
        agg = create_layer_aggregator("concat", 3, 4, rng)
        assert agg.output_dim == 12
        out = agg(layer_outputs())
        assert out.shape == (7, 12)

    def test_order_preserved(self, rng):
        agg = ConcatLayerAggregator(2, 1)
        a = Tensor(np.array([[1.0], [2.0]]))
        b = Tensor(np.array([[3.0], [4.0]]))
        np.testing.assert_allclose(agg([a, b]).data, [[1.0, 3.0], [2.0, 4.0]])

    def test_rejects_wrong_count(self, rng):
        agg = ConcatLayerAggregator(3, 4)
        with pytest.raises(ValueError, match="expected 3"):
            agg(layer_outputs(num_layers=2))


class TestMax:
    def test_elementwise_max(self):
        agg = MaxLayerAggregator(2, 2)
        a = Tensor(np.array([[1.0, 5.0]]))
        b = Tensor(np.array([[3.0, 2.0]]))
        np.testing.assert_allclose(agg([a, b]).data, [[3.0, 5.0]])

    def test_output_dim_unchanged(self, rng):
        agg = create_layer_aggregator("max", 3, 4, rng)
        assert agg.output_dim == 4
        assert agg(layer_outputs()).shape == (7, 4)

    def test_gradient_routes_to_winner(self):
        agg = MaxLayerAggregator(2, 1)
        a = Tensor(np.array([[1.0]]), requires_grad=True)
        b = Tensor(np.array([[3.0]]), requires_grad=True)
        agg([a, b]).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.0]])
        np.testing.assert_allclose(b.grad, [[1.0]])


class TestLSTM:
    def test_output_shape(self, rng):
        agg = create_layer_aggregator("lstm", 3, 4, rng)
        assert agg.output_dim == 4
        assert agg(layer_outputs()).shape == (7, 4)

    def test_has_trainable_parameters(self, rng):
        agg = LSTMLayerAggregator(3, 4, rng)
        assert agg.num_parameters() > 0

    def test_gradients_flow(self, rng):
        agg = LSTMLayerAggregator(2, 4, rng)
        outputs = [
            Tensor(np.random.default_rng(i).normal(size=(5, 4)), requires_grad=True)
            for i in range(2)
        ]
        agg(outputs).sum().backward()
        assert all(o.grad is not None for o in outputs)
        assert all(p.grad is not None for p in agg.parameters())
