"""LGCN: channel-wise top-k ranking + positional convolution."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.gnn.common import GraphCache
from repro.gnn.lgcn import LGCNLayer, LGCNModel, _channelwise_topk
from repro.graph.data import Graph


class TestChannelwiseTopK:
    def test_sorts_descending_per_channel(self):
        values = Tensor(np.array([[[1.0, 9.0], [5.0, 2.0], [3.0, 4.0]]]))
        ranked = _channelwise_topk(values, 3).data
        np.testing.assert_allclose(ranked[0, :, 0], [5.0, 3.0, 1.0])
        np.testing.assert_allclose(ranked[0, :, 1], [9.0, 4.0, 2.0])

    def test_gradient_follows_ranking(self):
        values = Tensor(np.array([[[1.0], [5.0], [3.0]]]), requires_grad=True)
        ranked = _channelwise_topk(values, 3)
        # Weight top slot only.
        (ranked[:, 0] * 1.0).sum().backward()
        np.testing.assert_allclose(values.grad[0, :, 0], [0.0, 1.0, 0.0])


class TestLGCNLayer:
    def test_output_shape(self, tiny_graph, rng):
        layer = LGCNLayer(tiny_graph.num_features, 6, k=3, rng=rng)
        out = layer(Tensor(tiny_graph.features), GraphCache(tiny_graph))
        assert out.shape == (tiny_graph.num_nodes, 6)

    def test_isolated_node_uses_self_only(self, rng):
        g = Graph(edge_index=np.zeros((2, 0), dtype=np.int64), features=np.ones((2, 3)))
        layer = LGCNLayer(3, 4, k=2, rng=rng)
        out = layer(Tensor(g.features), GraphCache(g)).data
        expected = (
            np.ones((1, 3)) @ layer.position_weights[0].data + layer.bias.data
        )
        np.testing.assert_allclose(out, np.tile(expected, (2, 1)), atol=1e-10)

    def test_gradients_flow(self, tiny_graph, rng):
        layer = LGCNLayer(tiny_graph.num_features, 4, k=2, rng=rng)
        out = layer(Tensor(tiny_graph.features, requires_grad=True), GraphCache(tiny_graph))
        out.sum().backward()
        assert all(p.grad is not None for p in layer.parameters())


class TestLGCNModel:
    def test_forward_shape(self, tiny_graph, rng):
        model = LGCNModel(
            tiny_graph.num_features, 8, tiny_graph.num_classes, rng, num_layers=2
        )
        out = model(tiny_graph.features, GraphCache(tiny_graph))
        assert out.shape == (tiny_graph.num_nodes, tiny_graph.num_classes)

    def test_describe(self, rng):
        model = LGCNModel(4, 8, 2, rng, num_layers=3)
        assert "lgcn" in model.describe()
