"""GraphCache precomputation and LayerContext gather sharing."""

import numpy as np
import pytest

from repro.autograd import kernels
from repro.autograd.kernels import peek_plan
from repro.autograd.tensor import Tensor
from repro.gnn.aggregators import create_node_aggregator
from repro.gnn.common import GraphCache, LayerContext
from repro.graph.data import Graph


@pytest.fixture
def cache(tiny_graph):
    return GraphCache(tiny_graph)


class TestGraphCachePlans:
    def test_plans_match_edge_arrays(self, cache):
        for ids, plan in (
            (cache.src, cache.src_plan),
            (cache.dst, cache.dst_plan),
            (cache.nbr_src, cache.nbr_src_plan),
            (cache.nbr_dst, cache.nbr_dst_plan),
        ):
            assert plan.segment_ids is ids
            assert plan.num_segments == cache.num_nodes
            np.testing.assert_array_equal(
                plan.counts, np.bincount(ids, minlength=cache.num_nodes)
            )

    def test_plans_registered_in_memo(self, cache):
        # Plan-less call sites passing the cached arrays hit the memo.
        assert peek_plan(cache.dst, cache.num_nodes) is cache.dst_plan
        assert peek_plan(cache.nbr_src, cache.num_nodes) is cache.nbr_src_plan

    def test_edge_arrays_are_int64(self, cache):
        for ids in (cache.src, cache.dst, cache.nbr_src, cache.nbr_dst):
            assert ids.dtype == np.int64
            assert ids.flags.c_contiguous

    def test_in_degrees_cached(self, cache):
        degrees = cache.in_degrees(self_loops=True)
        np.testing.assert_array_equal(
            degrees, np.bincount(cache.dst, minlength=cache.num_nodes)
        )
        assert cache.in_degrees(self_loops=True) is degrees
        without = cache.in_degrees(self_loops=False)
        np.testing.assert_array_equal(
            without, np.bincount(cache.nbr_dst, minlength=cache.num_nodes)
        )
        np.testing.assert_array_equal(degrees, without + 1.0)

    def test_head_layout_single_head_is_dst(self, cache):
        seg, plan = cache.head_layout(1)
        assert seg is cache.dst
        assert plan is cache.dst_plan

    def test_head_layout_multi_head(self, cache):
        heads = 4
        seg, plan = cache.head_layout(heads)
        num_edges = len(cache.dst)
        assert seg.shape == (heads * num_edges,)
        expected = (
            np.repeat(np.arange(heads), num_edges) * cache.num_nodes
            + np.tile(cache.dst, heads)
        )
        np.testing.assert_array_equal(seg, expected)
        assert plan.num_segments == heads * cache.num_nodes
        # Memoised: the same objects come back.
        seg2, plan2 = cache.head_layout(heads)
        assert seg2 is seg and plan2 is plan


class TestLayerContext:
    def test_source_features_memoised(self, cache):
        x = Tensor(np.random.default_rng(0).normal(size=(cache.num_nodes, 6)))
        ctx = LayerContext(x, cache)
        with_loops = ctx.source_features(self_loops=True)
        without = ctx.source_features(self_loops=False)
        assert ctx.source_features(self_loops=True) is with_loops
        assert ctx.source_features(self_loops=False) is without
        np.testing.assert_array_equal(with_loops.data, x.data[cache.src])
        np.testing.assert_array_equal(without.data, x.data[cache.nbr_src])

    @pytest.mark.parametrize("name", ["sage-sum", "sage-mean", "sage-max", "gin"])
    def test_aggregator_output_same_with_and_without_ctx(self, name, rng, cache):
        aggregator = create_node_aggregator(name, 6, 5, rng)
        x = Tensor(
            np.random.default_rng(1).normal(size=(cache.num_nodes, 6))
        )
        plain = aggregator(x, cache)
        shared = aggregator(x, cache, LayerContext(x, cache))
        np.testing.assert_allclose(shared.data, plain.data, atol=1e-12, rtol=0)

    def test_candidates_share_one_gather_node(self, rng, cache):
        x = Tensor(
            np.random.default_rng(2).normal(size=(cache.num_nodes, 6)),
            requires_grad=True,
        )
        ctx = LayerContext(x, cache)
        a = create_node_aggregator("sage-sum", 6, 5, rng)
        b = create_node_aggregator("sage-mean", 6, 5, rng)
        # Both ops start from the same strict-neighbor gather; the
        # shared tape node means gradients agree with the unshared run.
        loss = (a(x, cache, ctx) + b(x, cache, ctx)).sum()
        loss.backward()
        shared_grad = x.grad.copy()

        x2 = Tensor(x.data.copy(), requires_grad=True)
        loss2 = (a(x2, cache) + b(x2, cache)).sum()
        loss2.backward()
        np.testing.assert_allclose(shared_grad, x2.grad, atol=1e-9, rtol=0)

    def test_stale_context_is_ignored(self, rng, cache):
        aggregator = create_node_aggregator("sage-sum", 6, 5, rng)
        gen = np.random.default_rng(3)
        x = Tensor(gen.normal(size=(cache.num_nodes, 6)))
        other = Tensor(gen.normal(size=(cache.num_nodes, 6)))
        stale = LayerContext(other, cache)  # built for a different tensor
        out = aggregator(x, cache, stale)
        np.testing.assert_allclose(
            out.data, aggregator(x, cache).data, atol=1e-12, rtol=0
        )


class TestBackendEquivalenceOnGraph:
    def test_all_aggregators_agree_across_backends(self, rng, cache):
        x = Tensor(np.random.default_rng(4).normal(size=(cache.num_nodes, 6)))
        from repro.gnn.aggregators import NODE_AGGREGATORS

        for name in sorted(NODE_AGGREGATORS):
            aggregator = create_node_aggregator(
                name, 6, 4, np.random.default_rng(5)
            )
            outs = {}
            for backend in kernels.BACKENDS:
                with kernels.use_backend(backend):
                    outs[backend] = aggregator(x, cache).data
            np.testing.assert_allclose(
                outs["fused"], outs["naive"], atol=1e-9, rtol=0, err_msg=name
            )

    def test_isolated_node_graph(self, rng):
        # Node 3 has no edges at all; node 2 only receives.
        graph = Graph(
            edge_index=np.array([[0, 1], [2, 2]]), features=np.ones((4, 3))
        )
        cache = GraphCache(graph)
        x = Tensor(np.random.default_rng(6).normal(size=(4, 3)))
        for name in ("sage-max", "gcn", "gat", "gin"):
            aggregator = create_node_aggregator(
                name, 3, 3, np.random.default_rng(7)
            )
            outs = {}
            for backend in kernels.BACKENDS:
                with kernels.use_backend(backend):
                    outs[backend] = aggregator(x, cache).data
            np.testing.assert_allclose(
                outs["fused"], outs["naive"], atol=1e-9, rtol=0, err_msg=name
            )
            assert np.isfinite(outs["fused"]).all()
