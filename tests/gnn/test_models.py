"""GNNModel and the human-designed baselines."""

import numpy as np
import pytest

from repro.gnn.common import GraphCache
from repro.gnn.models import BASELINE_NAMES, GNNModel, build_baseline


class TestGNNModel:
    def test_forward_shape(self, tiny_graph, tiny_cache, rng):
        model = GNNModel(
            tiny_graph.num_features, 8, tiny_graph.num_classes, ["gcn", "gat"], rng
        )
        out = model(tiny_graph.features, tiny_cache)
        assert out.shape == (tiny_graph.num_nodes, tiny_graph.num_classes)

    def test_requires_layers(self, rng):
        with pytest.raises(ValueError, match="at least one"):
            GNNModel(4, 8, 2, [], rng)

    def test_skip_length_validated(self, rng):
        with pytest.raises(ValueError, match="skip_connections"):
            GNNModel(4, 8, 2, ["gcn"], rng, skip_connections=[True, False])

    def test_jk_concat_head_dim(self, tiny_graph, tiny_cache, rng):
        model = GNNModel(
            tiny_graph.num_features,
            8,
            tiny_graph.num_classes,
            ["gcn", "gcn", "gcn"],
            rng,
            layer_aggregator="concat",
        )
        assert model.classifier.in_features == 24

    def test_zero_skip_removes_layer_influence(self, tiny_graph, tiny_cache):
        """With JK and skip=ZERO on layer 1, only other layers matter."""
        model = GNNModel(
            tiny_graph.num_features,
            8,
            tiny_graph.num_classes,
            ["gcn", "gcn"],
            np.random.default_rng(0),
            skip_connections=[False, True],
            layer_aggregator="concat",
            dropout=0.0,
        )
        model.eval()
        embed = model.embed(tiny_graph.features, tiny_cache).data
        np.testing.assert_allclose(embed[:, :8], 0.0)
        assert np.abs(embed[:, 8:]).sum() > 0

    def test_per_layer_hidden_dims(self, tiny_graph, tiny_cache, rng):
        model = GNNModel(
            tiny_graph.num_features,
            [16, 8, 4],
            tiny_graph.num_classes,
            ["gcn", "sage-mean", "gin"],
            rng,
        )
        out = model(tiny_graph.features, tiny_cache)
        assert out.shape == (tiny_graph.num_nodes, tiny_graph.num_classes)
        assert model.classifier.in_features == 4

    def test_per_layer_hidden_with_jk_rejected(self, rng):
        with pytest.raises(ValueError, match="equal per-layer hidden"):
            GNNModel(4, [8, 16], 2, ["gcn", "gcn"], rng, layer_aggregator="max")

    def test_per_layer_activations(self, tiny_graph, tiny_cache, rng):
        model = GNNModel(
            tiny_graph.num_features,
            8,
            tiny_graph.num_classes,
            ["gcn", "gcn"],
            rng,
            activation=["tanh", "relu"],
        )
        assert model(tiny_graph.features, tiny_cache).shape[0] == tiny_graph.num_nodes

    def test_wrong_length_setting_list(self, rng):
        with pytest.raises(ValueError, match="activation list"):
            GNNModel(4, 8, 2, ["gcn", "gcn"], rng, activation=["relu"])

    def test_describe(self, rng):
        model = GNNModel(
            4, 8, 2, ["gcn", "gat"], rng,
            skip_connections=[True, False], layer_aggregator="max",
        )
        text = model.describe()
        assert "gcn" in text and "gat" in text
        assert "IZ" in text
        assert "max" in text

    def test_dropout_only_in_training(self, tiny_graph, tiny_cache):
        model = GNNModel(
            tiny_graph.num_features, 8, tiny_graph.num_classes, ["gcn"],
            np.random.default_rng(0), dropout=0.9,
        )
        model.eval()
        a = model(tiny_graph.features, tiny_cache).data
        b = model(tiny_graph.features, tiny_cache).data
        np.testing.assert_allclose(a, b)
        model.train()
        c = model(tiny_graph.features, tiny_cache).data
        assert not np.allclose(a, c)


class TestBaselines:
    @pytest.mark.parametrize("name", BASELINE_NAMES)
    def test_build_all(self, name, tiny_graph, tiny_cache, rng):
        model = build_baseline(
            name, tiny_graph.num_features, tiny_graph.num_classes, rng, hidden_dim=8
        )
        out = model(tiny_graph.features, tiny_cache)
        assert out.shape == (tiny_graph.num_nodes, tiny_graph.num_classes)

    def test_jk_variant_has_layer_aggregator(self, rng):
        plain = build_baseline("gcn", 4, 2, rng)
        jk = build_baseline("gcn-jk", 4, 2, rng)
        assert plain.layer_aggregator is None
        assert jk.layer_aggregator is not None

    def test_jk_mode_selects_aggregator(self, rng):
        lstm = build_baseline("gat-jk", 4, 2, rng, jk_mode="lstm")
        assert lstm.layer_aggregator_name == "lstm"

    def test_sage_variants(self, rng):
        for variant in ("sage-sum", "sage-mean", "sage-max"):
            model = build_baseline(variant, 4, 2, rng, num_layers=2)
            assert model.node_aggregator_names == [variant, variant]

    def test_unknown_baseline_raises(self, rng):
        with pytest.raises(ValueError, match="unknown baseline"):
            build_baseline("transformer", 4, 2, rng)

    def test_num_layers_respected(self, rng):
        model = build_baseline("gin", 4, 2, rng, num_layers=5)
        assert model.num_layers == 5
