"""The 11 node aggregators: shapes, gradients, semantics, equivariance."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core.search_space import NODE_OPS
from repro.gnn.aggregators import (
    NODE_AGGREGATORS,
    GATAggregator,
    GCNAggregator,
    GINAggregator,
    SageAggregator,
    create_node_aggregator,
)
from repro.gnn.common import GraphCache
from repro.graph.data import Graph


@pytest.fixture
def cache(path_graph):
    return GraphCache(path_graph)


ALL_OPS = sorted(NODE_AGGREGATORS)


class TestRegistry:
    def test_contains_the_11_paper_ops(self):
        assert set(NODE_OPS) == set(NODE_AGGREGATORS)
        assert len(NODE_OPS) == 11

    def test_unknown_name_raises(self, rng):
        with pytest.raises(ValueError, match="unknown node aggregator"):
            create_node_aggregator("conv2d", 4, 4, rng)


class TestAllAggregators:
    @pytest.mark.parametrize("name", ALL_OPS)
    def test_output_shape(self, name, rng, path_graph, cache):
        agg = create_node_aggregator(name, 2, 6, rng)
        out = agg(Tensor(path_graph.features), cache)
        assert out.shape == (5, 6)

    @pytest.mark.parametrize("name", ALL_OPS)
    def test_gradients_reach_every_parameter(self, name, rng, path_graph, cache):
        agg = create_node_aggregator(name, 2, 4, rng)
        out = agg(Tensor(path_graph.features, requires_grad=True), cache)
        out.sum().backward()
        for param_name, param in agg.named_parameters():
            assert param.grad is not None, f"{name}: no grad for {param_name}"

    @pytest.mark.parametrize("name", ALL_OPS)
    def test_permutation_equivariance(self, name, rng, tiny_graph):
        """Relabelling nodes permutes the output rows identically."""
        seed_rng = np.random.default_rng(5)
        agg = create_node_aggregator(name, tiny_graph.num_features, 4, seed_rng)

        out = agg(Tensor(tiny_graph.features), GraphCache(tiny_graph)).data

        perm = np.random.default_rng(1).permutation(tiny_graph.num_nodes)
        permuted = Graph(
            edge_index=perm[tiny_graph.edge_index],
            features=tiny_graph.features[np.argsort(perm)],
            labels=None,
            name="perm",
        )
        out_perm = agg(Tensor(permuted.features), GraphCache(permuted)).data
        np.testing.assert_allclose(out_perm, out[np.argsort(perm)], atol=1e-8)

    @pytest.mark.parametrize("name", ALL_OPS)
    def test_deterministic_forward(self, name, rng, path_graph, cache):
        agg = create_node_aggregator(name, 2, 4, np.random.default_rng(3))
        a = agg(Tensor(path_graph.features), cache).data
        b = agg(Tensor(path_graph.features), cache).data
        np.testing.assert_allclose(a, b)


class TestSage:
    def test_rejects_bad_reduction(self, rng):
        with pytest.raises(ValueError, match="reduction"):
            SageAggregator(2, 2, rng, reduce="median")

    def test_isolated_node_uses_self_only(self, rng):
        g = Graph(
            edge_index=np.zeros((2, 0), dtype=np.int64),
            features=np.ones((2, 3)),
        )
        agg = SageAggregator(3, 4, rng, reduce="mean")
        out = agg(Tensor(g.features), GraphCache(g))
        expected = agg.lin_self(Tensor(g.features))
        np.testing.assert_allclose(out.data, expected.data)

    def test_sum_scales_with_neighbor_count(self, rng):
        # Star graph: node 0 has 1 vs 3 identical neighbors.
        g1 = Graph(edge_index=np.array([[1], [0]]), features=np.ones((4, 2)))
        g3 = Graph(edge_index=np.array([[1, 2, 3], [0, 0, 0]]), features=np.ones((4, 2)))
        agg = SageAggregator(2, 2, np.random.default_rng(0), reduce="sum")
        out1 = agg(Tensor(g1.features), GraphCache(g1)).data[0]
        out3 = agg(Tensor(g3.features), GraphCache(g3)).data[0]
        self_part = agg.lin_self(Tensor(np.ones((1, 2)))).data[0]
        np.testing.assert_allclose(out3 - self_part, 3 * (out1 - self_part), atol=1e-9)


class TestGCN:
    def test_constant_features_stay_constantish(self, rng):
        """GCN of constant signal on a regular graph preserves it (up to W)."""
        # 4-cycle: every node has degree 2 (+self-loop = 3).
        edges = np.array([[0, 1, 1, 2, 2, 3, 3, 0], [1, 0, 2, 1, 3, 2, 0, 3]])
        g = Graph(edge_index=edges, features=np.ones((4, 2)))
        agg = GCNAggregator(2, 3, rng)
        out = agg(Tensor(g.features), GraphCache(g)).data
        np.testing.assert_allclose(out, np.tile(out[0], (4, 1)), atol=1e-9)

    def test_linear_in_features(self, rng, path_graph, cache):
        agg = GCNAggregator(2, 3, rng)
        agg.lin.bias.data[:] = 0.0  # lint: disable=tape-mutation -- fixture zeroes the bias before the forward under test
        x = path_graph.features
        out1 = agg(Tensor(x), cache).data
        out2 = agg(Tensor(2 * x), cache).data
        np.testing.assert_allclose(out2, 2 * out1, atol=1e-9)


class TestGAT:
    def test_all_variants_listed(self):
        assert set(GATAggregator.VARIANTS) == {
            "gat",
            "sym",
            "cos",
            "linear",
            "gen-linear",
        }

    def test_rejects_unknown_variant(self, rng):
        with pytest.raises(ValueError, match="variant"):
            GATAggregator(2, 4, rng, variant="multiplicative")

    def test_rejects_indivisible_heads(self, rng):
        with pytest.raises(ValueError, match="divisible"):
            GATAggregator(2, 5, rng, heads=2)

    @pytest.mark.parametrize("variant", GATAggregator.VARIANTS)
    def test_identical_neighbors_give_projected_feature(self, variant, rng):
        """With all-equal features, attention output = W x (+ bias)."""
        edges = np.array([[0, 1, 1, 2], [1, 0, 2, 1]])
        g = Graph(edge_index=edges, features=np.ones((3, 2)))
        agg = GATAggregator(2, 4, np.random.default_rng(1), variant=variant)
        out = agg(Tensor(g.features), GraphCache(g)).data
        projected = agg.lin(Tensor(np.ones((1, 2)))).data + agg.bias.data
        np.testing.assert_allclose(out, np.tile(projected, (3, 1)), atol=1e-9)

    def test_multihead_output_shape(self, rng, path_graph):
        agg = GATAggregator(2, 8, rng, heads=4)
        out = agg(Tensor(path_graph.features), GraphCache(path_graph))
        assert out.shape == (5, 8)

    def test_heads_fallback_in_factory(self, rng):
        # out_dim=5 not divisible by heads=2: factory falls back to 1 head.
        agg = create_node_aggregator("gat", 3, 5, rng, heads=2)
        assert agg.heads == 1


class TestGIN:
    def test_matches_manual_computation(self, rng):
        g = Graph(edge_index=np.array([[0, 1], [1, 0]]), features=np.eye(2))
        agg = GINAggregator(2, 3, rng)
        agg.eps.data[:] = 0.25  # lint: disable=tape-mutation -- fixture pins eps before the forward under test
        out = agg(Tensor(g.features), GraphCache(g)).data
        combined = (1.25 * np.eye(2)) + np.eye(2)[::-1]
        expected = agg.mlp(Tensor(combined)).data
        np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_eps_is_trainable(self, rng, path_graph, cache):
        agg = GINAggregator(2, 3, rng)
        agg(Tensor(path_graph.features), cache).sum().backward()
        assert agg.eps.grad is not None


class TestGeniePath:
    def test_output_bounded_by_lstm_tanh(self, rng, tiny_graph):
        agg = create_node_aggregator("geniepath", tiny_graph.num_features, 6, rng)
        out = agg(Tensor(tiny_graph.features), GraphCache(tiny_graph)).data
        assert (np.abs(out) <= 1.0 + 1e-9).all()
