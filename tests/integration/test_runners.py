"""Experiment runner helpers (protocols of runners_doc.md)."""

import numpy as np
import pytest

from repro.experiments import SCALES
from repro.experiments.runners import (
    NAS_METHODS,
    run_human_baseline,
    run_nas_method,
    run_sane,
    task_settings,
)
from repro.graph import load_dataset

SMOKE = SCALES["smoke"]


class TestTaskSettings:
    def test_transductive_defaults(self):
        graph = load_dataset("cora", scale=0.3)
        settings = task_settings(graph, SMOKE)
        assert settings.activation == "relu"
        assert settings.jk_mode == "concat"
        assert settings.dropout == 0.5

    def test_inductive_defaults(self):
        data = load_dataset("ppi", scale=0.5)
        settings = task_settings(data, SMOKE)
        assert settings.activation == "elu"
        assert settings.jk_mode == "lstm"
        assert settings.train_config.lr == pytest.approx(1e-2)


class TestHumanBaselineRunner:
    def test_repeats_scores(self):
        graph = load_dataset("cora", scale=0.5)
        scores = run_human_baseline("gcn", graph, SMOKE, seed=0)
        assert len(scores) == SMOKE.repeats
        assert all(0.0 <= s <= 1.0 for s in scores)

    def test_lgcn_branch(self):
        graph = load_dataset("cora", scale=0.5)
        scores = run_human_baseline("lgcn", graph, SMOKE, seed=0)
        assert len(scores) == SMOKE.repeats

    def test_geniepath_uses_tanh_override(self):
        """The override exists so GeniePath trains; it must not crash."""
        graph = load_dataset("cora", scale=0.5)
        scores = run_human_baseline("geniepath", graph, SMOKE, seed=0)
        assert len(scores) == SMOKE.repeats


class TestSaneRunner:
    def test_selects_best_by_validation(self):
        graph = load_dataset("cora", scale=0.5)
        run = run_sane(graph, SMOKE, seed=0)
        assert len(run.test_scores) == SMOKE.repeats
        assert len(run.search_results) == SMOKE.search_seeds
        assert run.search_time > 0

    def test_epsilon_forwarded(self):
        graph = load_dataset("cora", scale=0.5)
        run = run_sane(graph, SMOKE, seed=0, epsilon=1.0)
        # epsilon=1 freezes alphas; the run must still derive something.
        assert run.architecture is not None


class TestNasRunner:
    def test_unknown_method_rejected(self):
        graph = load_dataset("cora", scale=0.5)
        with pytest.raises(ValueError, match="unknown NAS method"):
            run_nas_method("simulated-annealing", graph, SMOKE)

    @pytest.mark.parametrize("method", NAS_METHODS)
    def test_all_methods_run(self, method):
        graph = load_dataset("cora", scale=0.5)
        run = run_nas_method(method, graph, SMOKE, seed=0)
        assert len(run.test_scores) == SMOKE.repeats
        assert run.outcome.search_time > 0
