"""End-to-end pipelines exercising the public API as a user would."""

import numpy as np

from repro.core import (
    SaneSearcher,
    SearchConfig,
    SearchSpace,
    retrain,
)
from repro.experiments.results import ExperimentTable, format_scores, render_table
from repro.graph import load_dataset
from repro.train import TrainConfig


class TestSearchRetrainPipeline:
    def test_quickstart_flow(self):
        """The README quickstart: load → search → derive → retrain."""
        graph = load_dataset("cora", seed=0, scale=0.7)
        space = SearchSpace(num_layers=2)
        searcher = SaneSearcher(
            space, graph, SearchConfig(epochs=6, hidden_dim=16), seed=0
        )
        result = searcher.search()
        assert space.contains(result.architecture)

        trained = retrain(
            result.architecture,
            graph,
            seed=0,
            hidden_dim=16,
            train_config=TrainConfig(epochs=60, patience=20),
        )
        chance = 1.0 / graph.num_classes
        assert trained.test_score > chance + 0.2

    def test_search_beats_trivial_on_tiny_budget(self):
        """Even a short search yields a trainable architecture on PPI."""
        data = load_dataset("ppi", seed=0, scale=1.0)
        space = SearchSpace(num_layers=2, node_ops=("gcn", "sage-mean", "gat"))
        searcher = SaneSearcher(
            space, data, SearchConfig(epochs=4, hidden_dim=16, dropout=0.1), seed=0
        )
        result = searcher.search()
        trained = retrain(
            result.architecture,
            data,
            seed=0,
            hidden_dim=32,
            dropout=0.1,
            activation="elu",
            train_config=TrainConfig(epochs=120, patience=40, lr=0.01),
        )
        assert trained.test_score > 0.3  # well above the all-negative 0.0


class TestResultRendering:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "---" in lines[2]

    def test_format_scores(self):
        assert format_scores([1.0, 1.0]) == "1.0000 (0.0000)"

    def test_experiment_table_helpers(self):
        table = ExperimentTable(
            title="t",
            headers=["method", "ds"],
            cells={"a": {"ds": [0.5, 0.7]}, "b": {"ds": [0.9]}},
        )
        assert table.mean("a", "ds") == 0.6
        assert table.best_row("ds") == "b"
        assert "0.9000" in table.render()

    def test_experiment_table_missing_cell_renders_dash(self):
        table = ExperimentTable(
            title="t", headers=["method", "x", "y"], cells={"a": {"x": [1.0]}}
        )
        assert "-" in table.render()
