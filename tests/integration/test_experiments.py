"""Smoke-scale integration runs of every experiment module."""

import numpy as np
import pytest

from repro.core.search_space import Architecture
from repro.experiments import (
    SCALES,
    render_architecture,
    run_figure2,
    run_figure3,
    run_figure4a,
    run_figure4b,
    run_table4,
    run_table6,
    run_table7,
    run_table8,
    run_table9,
    run_table10,
)

SMOKE = SCALES["smoke"]


class TestScales:
    def test_presets_exist(self):
        assert set(SCALES) == {"smoke", "default", "full"}

    def test_env_lookup(self, monkeypatch):
        from repro.experiments.config import Scale

        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert Scale.from_env().name == "smoke"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ValueError, match="REPRO_SCALE"):
            Scale.from_env()

    def test_train_config_overrides(self):
        config = SMOKE.train_config(lr=0.123)
        assert config.lr == 0.123
        assert config.epochs == SMOKE.train_epochs


class TestTable4:
    def test_renders(self):
        result = run_table4(SMOKE)
        text = result.render()
        assert "Table IV" in text
        assert "cora" in text
        assert "Table V" in text


class TestTable6:
    def test_partial_run(self):
        result = run_table6(
            SMOKE, datasets=("cora",), methods=("gcn", "random", "sane")
        )
        text = result.render()
        assert "gcn" in text and "sane" in text
        assert "cora" in result.sane_architectures
        scores = result.table.scores("sane", "cora")
        assert len(scores) == SMOKE.repeats

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError, match="unknown method"):
            run_table6(SMOKE, datasets=("cora",), methods=("alchemy",))


class TestTable7:
    def test_times_recorded(self):
        result = run_table7(SMOKE, datasets=("cora",))
        assert set(result.times) == {"random", "bayesian", "graphnas", "sane"}
        assert all(t["cora"] > 0 for t in result.times.values())
        assert "Table VII" in result.render()

    def test_speedup_computable(self):
        result = run_table7(SMOKE, datasets=("cora",))
        assert result.speedup("cora") > 0


class TestTable8:
    def test_shape_and_render(self):
        result = run_table8(SMOKE)
        assert set(result.hits) == {"jape", "gcn-align", "sane"}
        for method in result.hits.values():
            for direction in ("zh->en", "en->zh"):
                hits = method[direction]
                assert hits[1] <= hits[10] <= hits[50]
        assert "Table VIII" in result.render()


class TestTable9:
    def test_rows_present(self):
        result = run_table9(SMOKE, datasets=("cora",))
        labels = result.table.row_labels()
        assert "graphnas" in labels
        assert "graphnas (sane space)" in labels
        assert len(labels) == 4


class TestTable10:
    def test_rows_present(self):
        result = run_table10(SMOKE, datasets=("cora",))
        labels = result.table.row_labels()
        assert set(labels) == {"random (mlp)", "bayesian (mlp)", "sane"}


class TestFigure2:
    def test_render_architecture(self):
        arch = Architecture(("gcn", "gat"), ("identity", "zero"), "max")
        text = render_architecture(arch, "cora")
        assert "-[gcn]->" in text
        assert "ZERO, dropped" in text
        assert "max" in text

    def test_run(self):
        result = run_figure2(SMOKE, datasets=("cora",))
        assert "cora" in result.architectures
        assert "Figure 2" in result.render()


class TestFigure3:
    def test_trajectories(self):
        result = run_figure3(SMOKE, datasets=("cora",), num_sane_checkpoints=2)
        methods = result.trajectories["cora"]
        assert set(methods) == {"random", "bayesian", "graphnas", "sane"}
        for series in methods.values():
            assert series
            times = [t for t, __ in series]
            assert times == sorted(times)
        assert result.final_scores("cora")["sane"] >= 0


class TestFigure4:
    def test_epsilon_ablation(self):
        result = run_figure4a(SMOKE, datasets=("cora",), epsilons=(0.0, 1.0))
        means = result.means("cora")
        assert set(means) == {0.0, 1.0}
        assert "epsilon" in result.render()

    def test_depth_ablation(self):
        result = run_figure4b(SMOKE, datasets=("cora",), depths=(1, 3))
        means = result.means("cora")
        assert set(means) == {1, 3}
