"""Experiment-result persistence."""

import pytest

from repro.experiments.persistence import (
    load_records,
    load_table,
    save_record,
    save_table,
)
from repro.experiments.results import ExperimentTable


class TestTableRoundtrip:
    def test_roundtrip(self, tmp_path):
        table = ExperimentTable(
            title="Table VI",
            headers=["method", "cora"],
            cells={"gcn": {"cora": [0.88, 0.9]}, "sane": {"cora": [0.91]}},
        )
        path = tmp_path / "table6.json"
        save_table(table, path)
        loaded = load_table(path)
        assert loaded.title == table.title
        assert loaded.cells == table.cells
        assert loaded.render() == table.render()


class TestRecordLog:
    def test_append_and_read(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        save_record({"experiment": "table7", "scale": "smoke", "sane": 1.2}, path)
        save_record({"experiment": "table7", "scale": "smoke", "sane": 1.3}, path)
        records = load_records(path)
        assert len(records) == 2
        assert records[1]["sane"] == 1.3

    def test_missing_file_is_empty(self, tmp_path):
        assert load_records(tmp_path / "nope.jsonl") == []

    def test_rejects_non_dict(self, tmp_path):
        with pytest.raises(TypeError, match="dict"):
            save_record(["not", "a", "dict"], tmp_path / "x.jsonl")
