"""Module/Parameter system: discovery, modes, state dicts."""

import numpy as np
import pytest

from repro.nn.module import Module, Parameter


class Leaf(Module):
    def __init__(self):
        super().__init__()
        self.weight = Parameter(np.ones((2, 2)))
        self.bias = Parameter(np.zeros(2))


class Nested(Module):
    def __init__(self):
        super().__init__()
        self.leaf = Leaf()
        self.items = [Leaf(), Leaf()]
        self.table = {"a": Leaf()}
        self.scale = Parameter(np.ones(1))


class TestDiscovery:
    def test_leaf_parameters(self):
        assert len(Leaf().parameters()) == 2

    def test_nested_discovery_includes_lists_and_dicts(self):
        # 4 leaves x 2 params + 1 scale
        assert len(Nested().parameters()) == 9

    def test_named_parameters_paths(self):
        names = {name for name, __ in Nested().named_parameters()}
        assert "leaf.weight" in names
        assert "items.0.bias" in names
        assert "table.a.weight" in names
        assert "scale" in names

    def test_num_parameters_counts_elements(self):
        assert Leaf().num_parameters() == 6

    def test_modules_traversal(self):
        modules = list(Nested().modules())
        assert len(modules) == 5  # self + 4 leaves

    def test_parameters_are_requires_grad(self):
        assert all(p.requires_grad for p in Nested().parameters())


class TestModes:
    def test_train_eval_propagates(self):
        model = Nested()
        model.eval()
        assert not model.training
        assert not model.items[0].training
        model.train()
        assert model.table["a"].training

    def test_train_returns_self(self):
        model = Leaf()
        assert model.train() is model
        assert model.eval() is model


class TestGradState:
    def test_zero_grad_clears_all(self):
        model = Leaf()
        for p in model.parameters():
            p.grad = np.ones_like(p.data)
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestStateDict:
    def test_roundtrip(self):
        model = Nested()
        state = model.state_dict()
        for p in model.parameters():
            p.data = p.data + 5.0  # lint: disable=tape-mutation -- state-dict round-trip writes fresh storage on purpose
        model.load_state_dict(state)
        np.testing.assert_allclose(model.leaf.weight.data, np.ones((2, 2)))

    def test_state_dict_is_a_copy(self):
        model = Leaf()
        state = model.state_dict()
        model.weight.data += 1.0  # lint: disable=tape-mutation -- state-dict round-trip writes fresh storage on purpose
        np.testing.assert_allclose(state["weight"], np.ones((2, 2)))

    def test_missing_key_raises(self):
        model = Leaf()
        state = model.state_dict()
        del state["bias"]
        with pytest.raises(KeyError, match="mismatch"):
            model.load_state_dict(state)

    def test_unexpected_key_raises(self):
        model = Leaf()
        state = model.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError, match="mismatch"):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        model = Leaf()
        state = model.state_dict()
        state["bias"] = np.zeros(5)
        with pytest.raises(ValueError, match="shape"):
            model.load_state_dict(state)


class TestCallProtocol:
    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)

    def test_repr_contains_param_count(self):
        assert "6" in repr(Leaf())
