"""Linear / MLP / Dropout / Embedding / Sequential layers."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn.layers import MLP, Dropout, Embedding, Linear, Sequential


class TestLinear:
    def test_shapes(self, rng):
        layer = Linear(5, 3, rng)
        out = layer(Tensor(np.ones((7, 5))))
        assert out.shape == (7, 3)

    def test_no_bias(self, rng):
        layer = Linear(5, 3, rng, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_zero_input_gives_bias(self, rng):
        layer = Linear(4, 2, rng)
        layer.bias.data = np.array([1.0, -1.0])  # lint: disable=tape-mutation -- fixture sets deterministic weights before the forward
        out = layer(Tensor(np.zeros((3, 4))))
        np.testing.assert_allclose(out.data, [[1.0, -1.0]] * 3)

    def test_gradients_flow(self, rng):
        layer = Linear(4, 2, rng)
        layer(Tensor(np.ones((3, 4)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        np.testing.assert_allclose(layer.bias.grad, [3.0, 3.0])

    def test_repr(self, rng):
        assert "Linear(4, 2" in repr(Linear(4, 2, rng))


class TestMLP:
    def test_requires_two_dims(self, rng):
        with pytest.raises(ValueError, match="input and output"):
            MLP([4], rng)

    def test_depth(self, rng):
        mlp = MLP([4, 8, 8, 2], rng)
        assert len(mlp.layers) == 3
        assert mlp(Tensor(np.ones((5, 4)))).shape == (5, 2)

    def test_final_activation_flag(self, rng):
        relu_out = MLP([2, 2], rng, final_activation=True)
        out = relu_out(Tensor(-100 * np.ones((1, 2))))
        assert (out.data >= 0).all()

    def test_single_layer_no_activation_by_default(self, rng):
        mlp = MLP([2, 2], rng)
        out = mlp(Tensor(-100 * np.ones((1, 2))))
        # Linear output of a large negative input can be negative.
        assert out.shape == (1, 2)


class TestDropout:
    def test_eval_mode_identity(self, rng):
        layer = Dropout(0.9, rng)
        layer.eval()
        x = np.ones((4, 4))
        np.testing.assert_allclose(layer(Tensor(x)).data, x)

    def test_train_mode_drops(self, rng):
        layer = Dropout(0.5, rng)
        out = layer(Tensor(np.ones((50, 50)))).data
        assert (out == 0).any()
        assert (out != 0).any()


class TestEmbedding:
    def test_lookup(self, rng):
        emb = Embedding(10, 4, rng)
        out = emb(np.array([1, 1, 3]))
        assert out.shape == (3, 4)
        np.testing.assert_allclose(out.data[0], out.data[1])

    def test_gradient_accumulates_on_repeats(self, rng):
        emb = Embedding(5, 2, rng)
        emb(np.array([2, 2])).sum().backward()
        np.testing.assert_allclose(emb.weight.grad[2], [2.0, 2.0])
        np.testing.assert_allclose(emb.weight.grad[0], [0.0, 0.0])


class TestSequential:
    def test_applies_in_order(self, rng):
        model = Sequential(Linear(3, 4, rng), Linear(4, 2, rng))
        assert model(Tensor(np.ones((5, 3)))).shape == (5, 2)

    def test_collects_parameters(self, rng):
        model = Sequential(Linear(3, 4, rng), Linear(4, 2, rng))
        assert len(model.parameters()) == 4
