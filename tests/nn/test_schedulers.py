"""Learning-rate schedules."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.nn.optim import SGD
from repro.nn.schedulers import CosineAnnealingLR, StepLR, create_scheduler


def make_optimizer(lr=0.1):
    return SGD([Parameter(np.zeros(1))], lr=lr)


class TestStepLR:
    def test_halves_at_boundaries(self):
        optimizer = make_optimizer(0.1)
        scheduler = StepLR(optimizer, step_size=2, gamma=0.5)
        rates = [scheduler.step() for __ in range(4)]
        np.testing.assert_allclose(rates, [0.1, 0.05, 0.05, 0.025])

    def test_validates_step_size(self):
        with pytest.raises(ValueError, match="step_size"):
            StepLR(make_optimizer(), step_size=0)


class TestCosine:
    def test_anneals_to_eta_min(self):
        optimizer = make_optimizer(0.1)
        scheduler = CosineAnnealingLR(optimizer, t_max=10, eta_min=0.001)
        rates = [scheduler.step() for __ in range(10)]
        assert rates[0] < 0.1  # already decayed after first epoch
        assert abs(rates[-1] - 0.001) < 1e-12
        assert rates == sorted(rates, reverse=True)

    def test_clamps_beyond_t_max(self):
        optimizer = make_optimizer(0.1)
        scheduler = CosineAnnealingLR(optimizer, t_max=3, eta_min=0.0)
        for __ in range(5):
            rate = scheduler.step()
        assert rate == 0.0

    def test_validates_t_max(self):
        with pytest.raises(ValueError, match="t_max"):
            CosineAnnealingLR(make_optimizer(), t_max=0)


class TestFactory:
    def test_none_and_constant(self):
        assert create_scheduler(None, make_optimizer(), 10) is None
        assert create_scheduler("constant", make_optimizer(), 10) is None

    def test_by_name(self):
        assert isinstance(create_scheduler("cosine", make_optimizer(), 10), CosineAnnealingLR)
        assert isinstance(create_scheduler("step", make_optimizer(), 10), StepLR)

    def test_unknown(self):
        with pytest.raises(ValueError, match="lr schedule"):
            create_scheduler("exponential", make_optimizer(), 10)


class TestSearcherIntegration:
    def test_cosine_schedule_in_search(self, tiny_graph):
        from repro.core.search import SaneSearcher, SearchConfig
        from repro.core.search_space import SearchSpace

        space = SearchSpace(num_layers=1, node_ops=("gcn", "gat"))
        config = SearchConfig(epochs=3, hidden_dim=8, w_lr_schedule="cosine")
        searcher = SaneSearcher(space, tiny_graph, config, seed=0)
        initial_lr = searcher._w_optimizer.lr
        searcher.search()
        assert searcher._w_optimizer.lr < initial_lr
