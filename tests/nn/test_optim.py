"""Optimisers: convergence on convex problems, weight decay, clipping."""

import numpy as np
import pytest

from repro.autograd import ops
from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam, clip_grad_norm


def quadratic_loss(param: Parameter):
    return ops.sum((param - 3.0) * (param - 3.0))


def minimise(optimizer, param, steps=200):
    for __ in range(steps):
        optimizer.zero_grad()
        loss = quadratic_loss(param)
        loss.backward()
        optimizer.step()
    return quadratic_loss(param).item()


class TestSGD:
    def test_converges_on_quadratic(self):
        param = Parameter(np.zeros(3))
        final = minimise(SGD([param], lr=0.1), param)
        assert final < 1e-8
        np.testing.assert_allclose(param.data, 3.0, atol=1e-4)

    def test_momentum_accelerates(self):
        plain = Parameter(np.zeros(3))
        momentum = Parameter(np.zeros(3))
        plain_loss = minimise(SGD([plain], lr=0.01), plain, steps=50)
        momentum_loss = minimise(SGD([momentum], lr=0.01, momentum=0.9), momentum, steps=50)
        assert momentum_loss < plain_loss

    def test_skips_params_without_grad(self):
        a = Parameter(np.zeros(2))
        b = Parameter(np.ones(2))
        optimizer = SGD([a, b], lr=0.1)
        loss = ops.sum(a * a)
        loss.backward()
        optimizer.step()
        np.testing.assert_allclose(b.data, 1.0)

    def test_weight_decay_shrinks(self):
        param = Parameter(np.ones(2))
        optimizer = SGD([param], lr=0.1, weight_decay=1.0)
        optimizer.zero_grad()
        ops.sum(param * 0.0).backward()
        optimizer.step()
        assert (param.data < 1.0).all()


class TestAdam:
    def test_converges_on_quadratic(self):
        param = Parameter(np.zeros(3))
        final = minimise(Adam([param], lr=0.1), param, steps=300)
        assert final < 1e-6

    def test_bias_correction_first_step_magnitude(self):
        # With bias correction, the very first Adam step is ~lr.
        param = Parameter(np.zeros(1))
        optimizer = Adam([param], lr=0.05)
        ops.sum(param * 1.0).backward()
        optimizer.step()
        assert abs(abs(param.data[0]) - 0.05) < 1e-3

    def test_state_is_per_parameter(self):
        a = Parameter(np.zeros(1))
        b = Parameter(np.zeros(1))
        optimizer = Adam([a, b], lr=0.1)
        ops.sum(a * 1.0 + b * 100.0).backward()
        optimizer.step()
        # Adam normalises per-parameter, so both move ~lr despite the
        # 100x gradient difference.
        assert abs(abs(a.data[0]) - 0.1) < 1e-2
        assert abs(abs(b.data[0]) - 0.1) < 1e-2


class TestOptimizerValidation:
    def test_empty_params_raises(self):
        with pytest.raises(ValueError, match="empty"):
            Adam([], lr=0.1)

    def test_nonpositive_lr_raises(self):
        with pytest.raises(ValueError, match="learning rate"):
            SGD([Parameter(np.zeros(1))], lr=0.0)


class TestClipGradNorm:
    def test_clips_large_gradients(self):
        param = Parameter(np.zeros(4))
        param.grad = np.full(4, 10.0)
        norm = clip_grad_norm([param], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0)

    def test_leaves_small_gradients(self):
        param = Parameter(np.zeros(4))
        param.grad = np.full(4, 0.01)
        clip_grad_norm([param], max_norm=1.0)
        np.testing.assert_allclose(param.grad, 0.01)

    def test_ignores_none_grads(self):
        param = Parameter(np.zeros(4))
        assert clip_grad_norm([param], max_norm=1.0) == 0.0
