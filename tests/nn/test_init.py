"""Weight initialisation schemes."""

import numpy as np
import pytest

from repro.nn import init


class TestXavier:
    def test_uniform_bound(self):
        rng = np.random.default_rng(0)
        w = init.xavier_uniform((100, 50), rng)
        bound = np.sqrt(6.0 / 150)
        assert np.abs(w).max() <= bound

    def test_uniform_fills_range(self):
        rng = np.random.default_rng(0)
        w = init.xavier_uniform((200, 200), rng)
        bound = np.sqrt(6.0 / 400)
        assert np.abs(w).max() > 0.9 * bound

    def test_normal_std(self):
        rng = np.random.default_rng(0)
        w = init.xavier_normal((400, 400), rng)
        expected = np.sqrt(2.0 / 800)
        assert abs(w.std() - expected) / expected < 0.05

    def test_gain_scales(self):
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        base = init.xavier_uniform((10, 10), rng1)
        scaled = init.xavier_uniform((10, 10), rng2, gain=2.0)
        np.testing.assert_allclose(scaled, 2.0 * base)

    def test_deterministic_given_seed(self):
        a = init.xavier_uniform((5, 5), np.random.default_rng(3))
        b = init.xavier_uniform((5, 5), np.random.default_rng(3))
        np.testing.assert_allclose(a, b)


class TestOthers:
    def test_kaiming_bound(self):
        rng = np.random.default_rng(0)
        w = init.kaiming_uniform((100, 10), rng)
        assert np.abs(w).max() <= np.sqrt(3.0 / 100)

    def test_zeros(self):
        np.testing.assert_allclose(init.zeros((3, 3)), 0.0)

    def test_uniform_custom_bound(self):
        rng = np.random.default_rng(0)
        w = init.uniform((50, 50), rng, bound=0.2)
        assert np.abs(w).max() <= 0.2

    def test_vector_fans(self):
        rng = np.random.default_rng(0)
        w = init.xavier_uniform((64,), rng)
        assert w.shape == (64,)

    def test_scalar_shape_rejected(self):
        with pytest.raises(ValueError, match="scalar"):
            init.xavier_uniform((), np.random.default_rng(0))

    def test_conv_like_fans_use_receptive_field(self):
        # (out, in, k) style shape: fans scale with the trailing dims.
        rng = np.random.default_rng(0)
        small = init.xavier_uniform((4, 4, 1), rng)
        rng = np.random.default_rng(0)
        large = init.xavier_uniform((4, 4, 16), rng)
        assert np.abs(large).max() < np.abs(small).max()
