"""LSTM cell and the BiLSTM-attention layer aggregator backbone."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn.lstm import BiLSTMAttention, LSTMCell


class TestLSTMCell:
    def test_output_shapes(self, rng):
        cell = LSTMCell(4, 6, rng)
        h, c = cell(Tensor(np.ones((3, 4))), cell.init_state(3))
        assert h.shape == (3, 6)
        assert c.shape == (3, 6)

    def test_state_evolves(self, rng):
        cell = LSTMCell(4, 6, rng)
        state = cell.init_state(2)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 4)))
        h1, c1 = cell(x, state)
        h2, c2 = cell(x, (h1, c1))
        assert not np.allclose(h1.data, h2.data)

    def test_hidden_bounded_by_tanh(self, rng):
        cell = LSTMCell(3, 5, rng)
        x = Tensor(100 * np.ones((2, 3)))
        h, __ = cell(x, cell.init_state(2))
        assert (np.abs(h.data) <= 1.0 + 1e-9).all()

    def test_forget_gate_bias_initialised_open(self, rng):
        cell = LSTMCell(3, 5, rng)
        np.testing.assert_allclose(cell.bias.data[5:10], 1.0)

    def test_gradients_reach_weights(self, rng):
        cell = LSTMCell(3, 4, rng)
        h, c = cell(Tensor(np.ones((2, 3))), cell.init_state(2))
        (h.sum() + c.sum()).backward()
        assert cell.weight.grad is not None
        assert np.abs(cell.weight.grad).sum() > 0


class TestBiLSTMAttention:
    def test_output_shape(self, rng):
        encoder = BiLSTMAttention(8, 6, rng)
        out = encoder(Tensor(np.random.default_rng(0).normal(size=(10, 3, 8))))
        assert out.shape == (10, 8)

    def test_rejects_2d_input(self, rng):
        encoder = BiLSTMAttention(8, 6, rng)
        with pytest.raises(ValueError, match=r"\(N, K, d\)"):
            encoder(Tensor(np.ones((10, 8))))

    def test_output_in_convex_hull(self, rng):
        """Attention over the sequence keeps output within input bounds."""
        encoder = BiLSTMAttention(4, 3, rng)
        data = np.random.default_rng(1).normal(size=(6, 3, 4))
        out = encoder(Tensor(data)).data
        assert (out <= data.max(axis=1) + 1e-9).all()
        assert (out >= data.min(axis=1) - 1e-9).all()

    def test_constant_sequence_returns_constant(self, rng):
        encoder = BiLSTMAttention(4, 3, rng)
        item = np.random.default_rng(2).normal(size=(5, 1, 4))
        data = np.repeat(item, 3, axis=1)
        out = encoder(Tensor(data)).data
        np.testing.assert_allclose(out, item[:, 0, :], atol=1e-9)

    def test_gradients_flow_to_all_parameters(self, rng):
        encoder = BiLSTMAttention(4, 3, rng)
        out = encoder(Tensor(np.random.default_rng(3).normal(size=(5, 2, 4)), requires_grad=True))
        out.sum().backward()
        grads = [p.grad for p in encoder.parameters()]
        assert all(g is not None for g in grads)
