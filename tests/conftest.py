"""Shared fixtures: small deterministic graphs and helpers."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.graph.data import Graph, MultiGraphDataset
from repro.graph.datasets import transductive_split
from repro.graph.generators import citation_graph, community_multilabel_graph
from repro.gnn.common import GraphCache


@pytest.fixture(scope="session", autouse=True)
def _isolated_run_history(tmp_path_factory):
    """Point the run ledger at a per-session temp dir.

    Tests exercise real CLI entry points, every one of which appends a
    run manifest; without this the suite would pollute the checkout's
    ``benchmarks/history/``. Session-scoped (and setdefault, so an
    explicit override from the environment wins) because class-scoped
    fixtures that call ``main()`` run before any function-scoped
    monkeypatch could.
    """
    history = tmp_path_factory.mktemp("run-history")
    os.environ.setdefault("REPRO_HISTORY_DIR", str(history))
    yield


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def _make_tiny_graph() -> Graph:
    """~120-node homophilous citation graph with 60/20/20 masks."""
    generator = np.random.default_rng(7)
    graph = citation_graph(
        num_nodes=120,
        num_classes=4,
        num_features=24,
        rng=generator,
        avg_degree=4.0,
        homophily=0.85,
        feature_signal=0.6,
        words_per_node=6,
        name="tiny",
    )
    return transductive_split(graph, generator)


@pytest.fixture
def tiny_graph():
    return _make_tiny_graph()


@pytest.fixture
def tiny_cache(tiny_graph):
    return GraphCache(tiny_graph)


@pytest.fixture
def tiny_ppi():
    """Three-graph inductive multi-label dataset (1 train/1 val/1 test)."""
    generator = np.random.default_rng(9)
    projection = generator.normal(size=(5, 16))
    graphs = [
        community_multilabel_graph(
            num_nodes=60,
            num_communities=5,
            num_features=16,
            rng=generator,
            avg_memberships=1.8,
            intra_degree=6.0,
            noise_degree=1.0,
            feature_noise=0.5,
            projection=projection,
            name=f"tiny-ppi-{i}",
        )
        for i in range(3)
    ]
    return MultiGraphDataset(
        train_graphs=graphs[:1],
        val_graphs=graphs[1:2],
        test_graphs=graphs[2:],
        name="tiny-ppi",
    )


@pytest.fixture
def path_graph():
    """Deterministic 5-node path graph: 0-1-2-3-4, 2 features."""
    edges = np.array([[0, 1, 1, 2, 2, 3, 3, 4], [1, 0, 2, 1, 3, 2, 4, 3]])
    features = np.arange(10, dtype=np.float64).reshape(5, 2)
    labels = np.array([0, 0, 1, 1, 1])
    return Graph(edge_index=edges, features=features, labels=labels, name="path")
