"""Test utilities: finite-difference gradient checking."""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor


def numeric_gradient(fn, value: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn`` w.r.t. ``value``."""
    value = np.array(value, dtype=np.float64)  # copy: we perturb in place
    grad = np.zeros_like(value)
    flat = value.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(value)
        flat[i] = original - eps
        minus = fn(value)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(build_loss, value: np.ndarray, atol: float = 1e-5, rtol: float = 1e-4):
    """Assert autograd gradient of ``build_loss`` matches finite differences.

    ``build_loss(tensor) -> scalar Tensor``; called once with a
    requires-grad tensor for the analytic gradient and repeatedly with
    raw arrays for the numeric one.
    """
    value = np.array(value, dtype=np.float64)
    tensor = Tensor(value.copy(), requires_grad=True)
    loss = build_loss(tensor)
    loss.backward()
    analytic = tensor.grad
    assert analytic is not None, "no gradient reached the input"

    numeric = numeric_gradient(lambda v: build_loss(Tensor(v.copy())).item(), value)
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=rtol)
