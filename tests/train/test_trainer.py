"""Training loops: learning, early stopping, best-state restore."""

import numpy as np
import pytest

from repro.gnn.models import build_baseline
from repro.train.trainer import TrainConfig, fit, train_inductive, train_transductive


def make_model(data, seed=0, name="gcn", **kwargs):
    rng = np.random.default_rng(seed)
    return build_baseline(
        name, data.num_features, data.num_classes, rng, hidden_dim=8, **kwargs
    )


class TestTransductive:
    def test_learns_above_chance(self, tiny_graph):
        model = make_model(tiny_graph)
        result = train_transductive(model, tiny_graph, TrainConfig(epochs=60, patience=30))
        assert result.test_score > 1.0 / tiny_graph.num_classes + 0.15
        assert result.val_score > 0

    def test_history_recorded(self, tiny_graph):
        model = make_model(tiny_graph)
        result = train_transductive(model, tiny_graph, TrainConfig(epochs=5, patience=5))
        assert len(result.history) == 5
        losses = [l for l, __ in result.history]
        assert all(np.isfinite(losses))

    def test_early_stopping_cuts_run(self, tiny_graph):
        model = make_model(tiny_graph)
        result = train_transductive(
            model, tiny_graph, TrainConfig(epochs=500, patience=3)
        )
        assert len(result.history) < 500

    def test_best_state_restored(self, tiny_graph):
        """After training, the model scores exactly result.val_score."""
        from repro.autograd import no_grad
        from repro.gnn.common import GraphCache
        from repro.train.metrics import accuracy

        model = make_model(tiny_graph)
        result = train_transductive(model, tiny_graph, TrainConfig(epochs=30, patience=10))
        model.eval()
        with no_grad():
            logits = model(tiny_graph.features, GraphCache(tiny_graph)).numpy()
        val = accuracy(logits, tiny_graph.labels, tiny_graph.mask("val"))
        assert val == pytest.approx(result.val_score)

    def test_train_time_positive(self, tiny_graph):
        result = train_transductive(
            make_model(tiny_graph), tiny_graph, TrainConfig(epochs=3, patience=3)
        )
        assert result.train_time > 0


class TestInductive:
    def test_runs_and_scores(self, tiny_ppi):
        model = make_model(tiny_ppi, dropout=0.1)
        result = train_inductive(model, tiny_ppi, TrainConfig(epochs=25, patience=25, lr=0.01))
        assert 0.0 <= result.test_score <= 1.0
        assert len(result.history) <= 25

    def test_loss_decreases(self, tiny_ppi):
        model = make_model(tiny_ppi, dropout=0.0)
        result = train_inductive(model, tiny_ppi, TrainConfig(epochs=30, patience=30, lr=0.01))
        losses = [l for l, __ in result.history]
        assert losses[-1] < losses[0]


class TestFitDispatch:
    def test_graph_routes_transductive(self, tiny_graph):
        result = fit(make_model(tiny_graph), tiny_graph, TrainConfig(epochs=2, patience=2))
        assert result.best_epoch >= 0

    def test_multigraph_routes_inductive(self, tiny_ppi):
        result = fit(make_model(tiny_ppi), tiny_ppi, TrainConfig(epochs=2, patience=2))
        assert result.best_epoch >= 0

    def test_rejects_other_types(self):
        with pytest.raises(TypeError, match="cannot train"):
            fit(None, [1, 2, 3])


class TestTrainConfig:
    def test_replace_is_functional(self):
        config = TrainConfig(epochs=10)
        other = config.replace(epochs=5, lr=0.1)
        assert config.epochs == 10
        assert other.epochs == 5
        assert other.lr == 0.1
