"""Accuracy, micro-F1 and aggregation helpers."""

import numpy as np
import pytest

from repro.train.metrics import accuracy, format_mean_std, mean_std, micro_f1


class TestAccuracy:
    def test_hand_case(self):
        logits = np.array([[2.0, 0.0], [0.0, 2.0], [2.0, 0.0]])
        labels = np.array([0, 1, 1])
        assert accuracy(logits, labels) == pytest.approx(2 / 3)

    def test_with_mask(self):
        logits = np.array([[2.0, 0.0], [0.0, 2.0]])
        labels = np.array([0, 0])
        mask = np.array([True, False])
        assert accuracy(logits, labels, mask) == 1.0

    def test_empty_mask_raises(self):
        with pytest.raises(ValueError, match="empty"):
            accuracy(np.zeros((2, 2)), np.zeros(2), np.array([False, False]))


class TestMicroF1:
    def test_perfect(self):
        labels = np.array([[1, 0], [0, 1]])
        logits = np.where(labels, 5.0, -5.0)
        assert micro_f1(logits, labels) == 1.0

    def test_all_negative_predictions(self):
        labels = np.array([[1, 1], [1, 1]])
        logits = -np.ones((2, 2))
        assert micro_f1(logits, labels) == 0.0

    def test_no_positives_anywhere(self):
        assert micro_f1(-np.ones((2, 2)), np.zeros((2, 2))) == 0.0

    def test_hand_computed(self):
        labels = np.array([[1, 0, 1, 0]])
        logits = np.array([[1.0, 1.0, -1.0, -1.0]])  # tp=1 fp=1 fn=1
        assert micro_f1(logits, labels) == pytest.approx(0.5)

    def test_threshold(self):
        labels = np.array([[1]])
        logits = np.array([[0.4]])
        assert micro_f1(logits, labels, threshold=0.5) == 0.0
        assert micro_f1(logits, labels, threshold=0.0) == 1.0


class TestAggregation:
    def test_mean_std(self):
        mean, std = mean_std([1.0, 3.0])
        assert mean == 2.0
        assert std == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            mean_std([])

    def test_format(self):
        assert format_mean_std([0.5, 0.5]) == "0.5000 (0.0000)"
