"""Graph classifier, batching and pooling search."""

import numpy as np
import pytest

from repro.graphclf import (
    GraphClassifier,
    GraphClfConfig,
    GraphSearchConfig,
    collate,
    generate_graph_dataset,
    search_graph_classifier,
    train_graph_classifier,
)
from repro.graphclf.search import GraphSupernet


@pytest.fixture(scope="module")
def dataset():
    return generate_graph_dataset(seed=0, graphs_per_class=5, num_nodes=16)


FAST_SEARCH = GraphSearchConfig(
    epochs=4, hidden_dim=12, node_ops=("gcn", "gin"), pooling_ops=("mean", "sum")
)


class TestCollate:
    def test_offsets_are_correct(self, dataset):
        batch = collate(dataset.train[:3])
        assert batch.num_graphs == 3
        sizes = [g.num_nodes for g, __ in dataset.train[:3]]
        assert len(batch.graph_ids) == sum(sizes)
        # graph_ids are contiguous blocks.
        np.testing.assert_array_equal(np.sort(np.unique(batch.graph_ids)), [0, 1, 2])
        # No cross-graph edges: endpoints share a graph id.
        src_ids = batch.graph_ids[batch.cache.nbr_src]
        dst_ids = batch.graph_ids[batch.cache.nbr_dst]
        np.testing.assert_array_equal(src_ids, dst_ids)

    def test_labels_collected(self, dataset):
        batch = collate(dataset.train[:4])
        expected = [label for __, label in dataset.train[:4]]
        np.testing.assert_array_equal(batch.labels, expected)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            collate([])


class TestGraphClassifier:
    def test_forward_shape(self, dataset, rng):
        model = GraphClassifier(
            dataset.num_features, 12, dataset.num_classes, ["gcn", "gin"], "mean", rng
        )
        batch = collate(dataset.train[:5])
        assert model(batch).shape == (5, dataset.num_classes)

    def test_requires_layers(self, dataset, rng):
        with pytest.raises(ValueError, match="at least one"):
            GraphClassifier(4, 8, 2, [], "mean", rng)

    def test_training_learns(self, dataset):
        model = GraphClassifier(
            dataset.num_features, 16, dataset.num_classes,
            ["gcn", "gcn"], "mean", np.random.default_rng(0),
        )
        result = train_graph_classifier(model, dataset, GraphClfConfig(epochs=80))
        assert result.test_score > 1.0 / dataset.num_classes + 0.1

    def test_describe(self, dataset, rng):
        model = GraphClassifier(4, 8, 2, ["gcn"], "attention", rng)
        assert "attention" in model.describe()


class TestGraphSupernet:
    def test_parameter_groups(self, dataset):
        net = GraphSupernet(
            dataset.num_features, dataset.num_classes, FAST_SEARCH,
            np.random.default_rng(0),
        )
        arch = {id(p) for p in net.arch_parameters()}
        weight = {id(p) for p in net.weight_parameters()}
        assert not arch & weight
        assert len(net.arch_parameters()) == 2

    def test_derive(self, dataset):
        net = GraphSupernet(
            dataset.num_features, dataset.num_classes, FAST_SEARCH,
            np.random.default_rng(0),
        )
        net.alpha_node.data[:] = 0.0  # lint: disable=tape-mutation -- test pins alpha logits directly; no backward pending
        net.alpha_node.data[:, 1] = 2.0  # lint: disable=tape-mutation -- test pins alpha logits directly; no backward pending
        net.alpha_pool.data[:] = 0.0  # lint: disable=tape-mutation -- test pins alpha logits directly; no backward pending
        net.alpha_pool.data[0, 0] = 2.0  # lint: disable=tape-mutation -- test pins alpha logits directly; no backward pending
        nodes, pooling = net.derive()
        assert nodes == ("gin", "gin")
        assert pooling == "mean"


class TestSearch:
    def test_runs(self, dataset):
        result = search_graph_classifier(dataset, FAST_SEARCH, seed=0)
        assert len(result.node_aggregators) == 2
        assert result.pooling in FAST_SEARCH.pooling_ops
        assert len(result.history) == FAST_SEARCH.epochs

    def test_deterministic(self, dataset):
        a = search_graph_classifier(dataset, FAST_SEARCH, seed=2)
        b = search_graph_classifier(dataset, FAST_SEARCH, seed=2)
        assert a.node_aggregators == b.node_aggregators
        assert a.pooling == b.pooling
