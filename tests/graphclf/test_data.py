"""Graph-classification dataset generator."""

import numpy as np
import pytest

from repro.graphclf.data import GRAPH_CLASSES, generate_graph_dataset


@pytest.fixture(scope="module")
def dataset():
    return generate_graph_dataset(seed=0, graphs_per_class=6, num_nodes=18)


class TestGenerator:
    def test_class_count(self, dataset):
        assert dataset.num_classes == len(GRAPH_CLASSES) == 4

    def test_split_sizes(self, dataset):
        total = len(dataset.train) + len(dataset.val) + len(dataset.test)
        assert total == 4 * 6

    def test_stratified(self, dataset):
        train_classes = {label for __, label in dataset.train}
        assert train_classes == set(range(4))
        test_classes = {label for __, label in dataset.test}
        assert test_classes == set(range(4))

    def test_deterministic(self):
        a = generate_graph_dataset(seed=5, graphs_per_class=3)
        b = generate_graph_dataset(seed=5, graphs_per_class=3)
        ga, la = a.train[0]
        gb, lb = b.train[0]
        assert la == lb
        np.testing.assert_allclose(ga.features, gb.features)

    def test_feature_dims_consistent(self, dataset):
        dims = {g.num_features for g, __ in dataset.train + dataset.val + dataset.test}
        assert dims == {8}

    def test_graphs_are_undirected(self, dataset):
        graph, __ = dataset.train[0]
        pairs = set(map(tuple, graph.edge_index.T))
        assert all((v, u) in pairs for u, v in pairs)

    def test_classes_structurally_distinct(self, dataset):
        """Average degree variance separates stars from rings."""
        from collections import defaultdict

        by_class = defaultdict(list)
        for graph, label in dataset.train + dataset.val + dataset.test:
            degrees = np.bincount(graph.dst, minlength=graph.num_nodes)
            by_class[label].append(degrees.std())
        ring_std = np.mean(by_class[0])
        star_std = np.mean(by_class[1])
        assert star_std > ring_std

    def test_requires_training_graphs(self):
        from repro.graphclf.data import GraphClassificationDataset

        with pytest.raises(ValueError, match="training graphs"):
            GraphClassificationDataset(train=[], val=[], test=[], num_classes=2)
