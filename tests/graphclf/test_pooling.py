"""Graph pooling ops."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.graphclf.pooling import POOLING_OPS, create_pooling_op

GRAPH_IDS = np.array([0, 0, 0, 1, 1])
DATA = np.array(
    [[1.0, 2.0], [3.0, 4.0], [5.0, 0.0], [10.0, 10.0], [20.0, 30.0]]
)


class TestRegistry:
    def test_expected_ops(self):
        assert set(POOLING_OPS) == {"mean", "max", "sum", "attention"}

    def test_unknown_raises(self, rng):
        with pytest.raises(ValueError, match="unknown pooling"):
            create_pooling_op("median", 4, rng)


class TestReductions:
    def test_mean(self, rng):
        pool = create_pooling_op("mean", 2, rng)
        out = pool(Tensor(DATA), GRAPH_IDS, 2).data
        np.testing.assert_allclose(out[0], [3.0, 2.0])
        np.testing.assert_allclose(out[1], [15.0, 20.0])

    def test_max(self, rng):
        pool = create_pooling_op("max", 2, rng)
        out = pool(Tensor(DATA), GRAPH_IDS, 2).data
        np.testing.assert_allclose(out[0], [5.0, 4.0])

    def test_sum(self, rng):
        pool = create_pooling_op("sum", 2, rng)
        out = pool(Tensor(DATA), GRAPH_IDS, 2).data
        np.testing.assert_allclose(out[1], [30.0, 40.0])

    @pytest.mark.parametrize("name", sorted(POOLING_OPS))
    def test_output_shape(self, name, rng):
        pool = create_pooling_op(name, 2, rng)
        out = pool(Tensor(DATA), GRAPH_IDS, 2)
        assert out.shape == (2, 2)

    @pytest.mark.parametrize("name", sorted(POOLING_OPS))
    def test_gradients_flow_to_input(self, name, rng):
        pool = create_pooling_op(name, 2, rng)
        x = Tensor(DATA.copy(), requires_grad=True)
        pool(x, GRAPH_IDS, 2).sum().backward()
        assert x.grad is not None
        assert np.abs(x.grad).sum() > 0

    def test_attention_weights_are_convex(self, rng):
        """Attention pooling output lies in tanh-value convex hull."""
        pool = create_pooling_op("attention", 2, rng)
        out = pool(Tensor(DATA), GRAPH_IDS, 2).data
        assert (np.abs(out) <= 1.0 + 1e-9).all()

    def test_permutation_invariance(self, rng):
        """Pooling must not depend on node order within a graph."""
        for name in POOLING_OPS:
            pool = create_pooling_op(name, 2, np.random.default_rng(3))
            out1 = pool(Tensor(DATA), GRAPH_IDS, 2).data
            perm = np.array([2, 0, 1, 4, 3])
            out2 = pool(Tensor(DATA[perm]), GRAPH_IDS, 2).data
            np.testing.assert_allclose(out1, out2, atol=1e-10, err_msg=name)
