"""Artifact round-trips: bit-exact weights, verified load, exporters."""

import json

import numpy as np
import pytest

from repro.autograd import kernels
from repro.experiments.config import SCALES
from repro.serve import (
    ArtifactError,
    InferenceEngine,
    ModelArtifact,
    export_baseline,
    load_artifact,
    save_artifact,
)


def _round_trip(artifact, tmp_path):
    path = save_artifact(artifact, tmp_path / "artifact.json")
    return load_artifact(path)


class TestRoundTrip:
    def test_weights_are_bit_exact(self, node_artifact, tmp_path):
        loaded = _round_trip(node_artifact, tmp_path)
        assert sorted(loaded.weights) == sorted(node_artifact.weights)
        for name, value in node_artifact.weights.items():
            assert np.array_equal(loaded.weights[name], value), name

    def test_metadata_survives(self, node_artifact, tmp_path):
        loaded = _round_trip(node_artifact, tmp_path)
        assert loaded.task == node_artifact.task
        assert loaded.genotype == node_artifact.genotype
        assert loaded.model_config == node_artifact.model_config
        assert loaded.dataset == node_artifact.dataset
        assert loaded.features == node_artifact.features
        assert loaded.training == node_artifact.training

    def test_genotype_round_trips_as_architecture(self, node_artifact, tmp_path):
        from tests.serve.conftest import GENOTYPE

        loaded = _round_trip(node_artifact, tmp_path)
        assert loaded.architecture() == GENOTYPE

    @pytest.mark.parametrize("backend", ["naive", "fused"])
    def test_loaded_predictions_bit_identical_per_backend(
        self, node_artifact, tmp_path, backend
    ):
        """export -> load -> predict equals serving the original bundle.

        Checked under both kernel backends: the artifact stores raw
        float64 weights, so whichever backend serves it must produce
        exactly the numbers the in-memory model produces.
        """
        loaded = _round_trip(node_artifact, tmp_path)
        with kernels.use_backend(backend):
            direct = InferenceEngine.from_artifact(node_artifact).predict()
            served = InferenceEngine.from_artifact(loaded).predict()
        assert np.array_equal(direct, served)

    def test_kg_round_trip_predictions(self, kg_artifact, tmp_path):
        loaded = _round_trip(kg_artifact, tmp_path)
        direct = InferenceEngine.from_artifact(kg_artifact).predict(
            node_ids=np.arange(4)
        )
        served = InferenceEngine.from_artifact(loaded).predict(
            node_ids=np.arange(4)
        )
        assert np.array_equal(direct, served)


class TestVerifiedLoad:
    def test_unknown_version_is_rejected(self, node_artifact, tmp_path):
        path = save_artifact(node_artifact, tmp_path / "artifact.json")
        payload = json.loads(path.read_text())
        payload["version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ArtifactError, match="unsupported artifact version"):
            load_artifact(path)

    def test_version_is_checked_before_hash(self, node_artifact, tmp_path):
        # A future-version file naturally has a hash this build cannot
        # reproduce; the error must still name the version, not the hash.
        path = save_artifact(node_artifact, tmp_path / "artifact.json")
        payload = json.loads(path.read_text())
        payload["version"] = 2
        payload["content_hash"] = "0" * 64
        path.write_text(json.dumps(payload))
        with pytest.raises(ArtifactError, match="version"):
            load_artifact(path)

    def test_tampered_content_is_rejected(self, node_artifact, tmp_path):
        path = save_artifact(node_artifact, tmp_path / "artifact.json")
        payload = json.loads(path.read_text())
        payload["training"]["val_score"] = 1.0
        path.write_text(json.dumps(payload))
        with pytest.raises(ArtifactError, match="content hash mismatch"):
            load_artifact(path)

    def test_invalid_json_is_an_artifact_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ArtifactError, match="not valid JSON"):
            load_artifact(path)

    def test_unknown_task_is_rejected(self):
        with pytest.raises(ArtifactError, match="unknown artifact task"):
            ModelArtifact(
                task="question_answering",
                model_config={},
                dataset={},
                features={},
                weights={},
            )


class TestExporters:
    def test_lgcn_is_not_exportable(self):
        with pytest.raises(ArtifactError, match="lgcn is not exportable"):
            export_baseline("lgcn", "cora", SCALES["smoke"], seed=0)
