"""Serving fixtures: train once per session, reuse everywhere.

Exporting an artifact trains a model, which is the expensive part of
every serve test; the session-scoped fixtures amortise it across the
whole package. Tests must not mutate the fixture artifacts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.search_space import Architecture
from repro.experiments.config import SCALES
from repro.graph.data import Graph
from repro.serve import export_alignment, export_architecture

GENOTYPE = Architecture(
    node_aggregators=("gat", "gcn"),
    skip_connections=("identity", "identity"),
    layer_aggregator="concat",
)


@pytest.fixture(scope="session")
def node_artifact():
    """A searched-like 2-layer genotype trained on smoke-scale cora."""
    return export_architecture(GENOTYPE, "cora", SCALES["smoke"], seed=0)


@pytest.fixture(scope="session")
def kg_artifact():
    """A smoke-scale entity-alignment encoder bundle."""
    return export_alignment(SCALES["smoke"], seed=0)


def make_ring_graph(num_nodes: int, num_features: int, seed: int, name: str) -> Graph:
    """A tiny bidirected ring with random features — a 'foreign' graph."""
    rng = np.random.default_rng(seed)
    src = np.arange(num_nodes)
    dst = (src + 1) % num_nodes
    edges = np.vstack(
        [np.concatenate([src, dst]), np.concatenate([dst, src])]
    )
    features = rng.normal(size=(num_nodes, num_features))
    labels = np.zeros(num_nodes, dtype=np.int64)
    return Graph(edge_index=edges, features=features, labels=labels, name=name)
