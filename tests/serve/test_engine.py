"""Engine semantics: coalesced batches, plan cache, pinned default graph."""

import numpy as np
import pytest

from repro.serve import InferenceEngine, PlanCache, Request
from repro.serve.plans import graph_key

from tests.serve.conftest import make_ring_graph


@pytest.fixture(scope="module")
def engine(node_artifact):
    return InferenceEngine.from_artifact(node_artifact)


class TestBatching:
    def test_batched_equals_single(self, engine):
        rng = np.random.default_rng(3)
        id_sets = [
            rng.integers(0, engine.num_targets, size=4) for __ in range(6)
        ]
        batched = engine.predict_batch(
            [Request(node_ids=ids) for ids in id_sets]
        )
        for ids, result in zip(id_sets, batched):
            assert np.array_equal(result, engine.predict(node_ids=ids))

    def test_none_ids_returns_full_logits(self, engine):
        full = engine.predict()
        assert full.shape[0] == engine.num_targets
        some = engine.predict(node_ids=np.array([0, 1]))
        assert np.array_equal(some, full[:2])

    def test_empty_batch(self, engine):
        assert engine.predict_batch([]) == []

    def test_mixed_graph_batch_groups_per_graph(self, engine, node_artifact):
        foreign = make_ring_graph(
            12, node_artifact.features["num_features"], seed=1, name="ring"
        )
        batch = [
            Request(node_ids=np.array([0, 1])),
            Request(node_ids=np.array([2, 3]), graph=foreign),
            Request(node_ids=np.array([4, 5])),
        ]
        results = engine.predict_batch(batch)
        assert np.array_equal(results[0], engine.predict(node_ids=[0, 1]))
        assert np.array_equal(
            results[1], engine.predict(node_ids=[2, 3], graph=foreign)
        )
        assert np.array_equal(results[2], engine.predict(node_ids=[4, 5]))


class TestPlanCache:
    def test_same_structure_shares_a_key(self, node_artifact):
        dim = node_artifact.features["num_features"]
        a = make_ring_graph(10, dim, seed=0, name="a")
        b = make_ring_graph(10, dim, seed=0, name="b")
        assert graph_key(a) == graph_key(b)
        cache = PlanCache(capacity=4)
        cache.get(a)
        cache.get(b)
        stats = cache.stats()
        assert stats["misses"] == 1 and stats["hits"] == 1

    def test_lru_eviction_at_capacity(self, node_artifact):
        dim = node_artifact.features["num_features"]
        graphs = [
            make_ring_graph(8 + i, dim, seed=i, name=f"g{i}") for i in range(3)
        ]
        cache = PlanCache(capacity=2)
        for graph in graphs:
            cache.get(graph)
        stats = cache.stats()
        assert stats["size"] == 2
        assert stats["evictions"] == 1
        assert stats["misses"] == 3
        # g0 was evicted; g2 (most recent) is still resident.
        cache.get(graphs[2])
        assert cache.stats()["hits"] == 1
        cache.get(graphs[0])
        assert cache.stats()["misses"] == 4

    def test_default_graph_is_pinned_across_evictions(self, node_artifact):
        engine = InferenceEngine.from_artifact(node_artifact, plan_capacity=2)
        baseline = engine.predict(node_ids=np.array([0, 1, 2]))
        dim = node_artifact.features["num_features"]
        # A burst of foreign graphs cycles the LRU well past capacity …
        for index in range(5):
            foreign = make_ring_graph(6 + index, dim, seed=index, name=f"f{index}")
            engine.predict(node_ids=np.array([0]), graph=foreign)
        # … but the artifact's own graph never gets rebuilt or changed.
        assert np.array_equal(
            engine.predict(node_ids=np.array([0, 1, 2])), baseline
        )
        assert engine.plan_cache.stats()["evictions"] >= 3


class TestAlignment:
    def test_scores_shape_and_slicing(self, kg_artifact):
        engine = InferenceEngine.from_artifact(kg_artifact)
        full = engine.predict()
        assert full.shape == (
            kg_artifact.features["num_entities_1"],
            kg_artifact.features["num_entities_2"],
        )
        some = engine.predict(node_ids=np.array([3, 5]))
        assert np.array_equal(some, full[[3, 5]])

    def test_alignment_rejects_per_request_graphs(self, kg_artifact, node_artifact):
        engine = InferenceEngine.from_artifact(kg_artifact)
        foreign = make_ring_graph(
            6, node_artifact.features["num_features"], seed=0, name="x"
        )
        with pytest.raises(ValueError, match="alignment requests cannot carry"):
            engine.predict_batch([Request(graph=foreign)])
