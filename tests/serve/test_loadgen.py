"""Load generator and serve-bench payload shape."""

import numpy as np
import pytest

from repro.obs.bench_gate import load_bench, metric_direction, scalar_metrics
from repro.serve import (
    InferenceEngine,
    ServeServer,
    bench_metrics,
    emit_serve_bench,
    nearest_rank_percentile,
    render_load_report,
    run_load,
    sweep_levels,
)


class TestPercentile:
    def test_nearest_rank_picks_elements(self):
        samples = [0.1, 0.2, 0.3, 0.4]
        assert nearest_rank_percentile(samples, 50.0) == 0.2
        assert nearest_rank_percentile(samples, 99.0) == 0.4
        assert nearest_rank_percentile(samples, 100.0) == 0.4

    def test_single_sample(self):
        assert nearest_rank_percentile([7.0], 50.0) == 7.0
        assert nearest_rank_percentile([7.0], 99.0) == 7.0


class TestSweeps:
    def test_every_scale_has_at_least_three_levels(self):
        for name in ("smoke", "default", "full"):
            assert len(sweep_levels(name)) >= 3

    def test_full_reaches_ten_thousand_clients(self):
        assert sweep_levels("full")[-1] == 10_000

    def test_unknown_scale_raises(self):
        with pytest.raises(ValueError, match="unknown scale"):
            sweep_levels("galactic")


class TestRunLoad:
    @pytest.fixture(scope="class")
    def results(self, node_artifact):
        engine = InferenceEngine.from_artifact(node_artifact)
        with ServeServer(engine, max_batch=16) as server:
            return run_load(server, (1, 4), requests_per_level=12, seed=0)

    def test_budget_and_latency_shape(self, results):
        assert [r.concurrency for r in results] == [1, 4]
        for level in results:
            assert level.requests == 12
            assert level.rps > 0.0
            assert 0.0 < level.p50_s <= level.p99_s

    def test_report_renders_every_level(self, results):
        text = render_load_report(results)
        assert "req/s" in text and "p99_ms" in text
        for level in results:
            assert f"{level.rps:.1f}" in text

    def test_bench_gauges_have_gateable_names(self, results):
        snapshot = bench_metrics(results).snapshot()
        gauges = snapshot["gauges"]
        for level in results:
            prefix = f"serve.c{level.concurrency}"
            assert metric_direction(f"{prefix}.rps") == 1
            assert metric_direction(f"{prefix}.p50_latency_s") == -1
            assert gauges[f"{prefix}.rps"]["value"] == level.rps
            assert gauges[f"{prefix}.p99_latency_s"]["value"] == level.p99_s

    def test_emit_serve_bench_payload_loads_in_the_gate(
        self, results, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        path = emit_serve_bench(
            "serve_smoketest", results, extra={"note": "unit"}
        )
        assert path == tmp_path / "BENCH_serve_smoketest.json"
        payload = load_bench(path)
        assert payload["bench"] == "serve_smoketest"
        assert payload["extra"]["note"] == "unit"
        metrics = scalar_metrics(payload)
        assert f"serve.c{results[0].concurrency}.rps" in metrics

    def test_request_sequence_is_seeded(self, node_artifact):
        """Two same-seed sweeps ask for the same ids -> same predictions."""
        engine = InferenceEngine.from_artifact(node_artifact)

        captured: list[list] = []

        class Recording(ServeServer):
            def submit_async(self, node_ids=None, graph=None,
                             deadline_s=None):
                captured[-1].append(np.asarray(node_ids).copy())
                return super().submit_async(
                    node_ids=node_ids, graph=graph, deadline_s=deadline_s
                )

        for __ in range(2):
            captured.append([])
            with Recording(engine, max_batch=8) as server:
                run_load(server, (2,), requests_per_level=6, seed=123)
        first, second = captured
        assert len(first) == len(second) == 6
        for a, b in zip(first, second):
            assert np.array_equal(a, b)
