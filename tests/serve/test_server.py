"""Server behavior: sync/async submission, batching, failure isolation."""

import numpy as np
import pytest

from repro.serve import InferenceEngine, ServeServer


@pytest.fixture(scope="module")
def engine(node_artifact):
    return InferenceEngine.from_artifact(node_artifact)


class TestLifecycle:
    def test_double_start_is_an_error(self, engine):
        with ServeServer(engine) as server:
            with pytest.raises(RuntimeError, match="already started"):
                server.start()

    def test_submit_before_start_is_rejected(self, engine):
        server = ServeServer(engine)
        with pytest.raises(RuntimeError, match="not accepting requests"):
            server.submit_async(node_ids=np.array([0]))

    def test_invalid_config_is_rejected(self, engine):
        with pytest.raises(ValueError, match="max_batch"):
            ServeServer(engine, max_batch=0)
        with pytest.raises(ValueError, match="workers"):
            ServeServer(engine, workers=0)

    def test_stop_drains_pending_requests(self, engine):
        server = ServeServer(engine, max_batch=4)
        server.start()
        pendings = [
            server.submit_async(node_ids=np.array([i])) for i in range(8)
        ]
        server.stop()
        for pending in pendings:
            assert pending.result(timeout=5.0) is not None
            assert pending.latency >= 0.0


class TestSubmission:
    def test_sync_submit_matches_engine(self, engine):
        ids = np.array([0, 1, 2, 3])
        with ServeServer(engine) as server:
            served = server.submit(node_ids=ids, timeout=10.0)
        assert np.array_equal(served, engine.predict(node_ids=ids))

    def test_concurrent_batch_matches_singles(self, engine):
        rng = np.random.default_rng(0)
        id_sets = [
            rng.integers(0, engine.num_targets, size=3) for __ in range(16)
        ]
        with ServeServer(engine, max_batch=8, workers=2) as server:
            pendings = [
                server.submit_async(node_ids=ids) for ids in id_sets
            ]
            results = [p.result(timeout=10.0) for p in pendings]
        for ids, result in zip(id_sets, results):
            assert np.array_equal(result, engine.predict(node_ids=ids))

    def test_failed_request_does_not_kill_the_worker(self, engine):
        bad = np.array([engine.num_targets + 10_000])
        with ServeServer(engine) as server:
            with pytest.raises(IndexError):
                server.submit(node_ids=bad, timeout=10.0)
            # The worker resolved the failure and kept going:
            good = server.submit(node_ids=np.array([0]), timeout=10.0)
        assert np.array_equal(good, engine.predict(node_ids=np.array([0])))
