"""Reservoir sampling and serve metrics: exactness below cap, bounds above."""

import pytest

from repro.obs import MetricsRegistry
from repro.serve import Reservoir
from repro.serve.metrics import (
    DEFAULT_RESERVOIR_CAPACITY,
    ServeMetrics,
    nearest_rank_percentile,
)


class TestReservoir:
    def test_below_capacity_is_exact_and_ordered(self):
        reservoir = Reservoir(capacity=10)
        values = [0.5, 0.1, 0.9, 0.3]
        for value in values:
            reservoir.add(value)
        assert reservoir.values() == values
        assert len(reservoir) == 4
        assert bool(reservoir)

    def test_append_alias_matches_list_protocol(self):
        reservoir = Reservoir(capacity=4)
        reservoir.append(1.0)
        reservoir.append(2.0)
        assert list(reservoir) == [1.0, 2.0]

    def test_size_is_bounded_above_capacity(self):
        reservoir = Reservoir(capacity=16, seed=0)
        for index in range(1000):
            reservoir.add(float(index))
        assert len(reservoir) == 1000  # count keeps the true total
        assert len(reservoir.values()) == 16

    def test_same_seed_same_stream_same_retained_set(self):
        kept = []
        for __ in range(2):
            reservoir = Reservoir(capacity=8, seed=3)
            for index in range(500):
                reservoir.add(float(index))
            kept.append(reservoir.values())
        assert kept[0] == kept[1]

    def test_different_seeds_diverge(self):
        sets = []
        for seed in (0, 1):
            reservoir = Reservoir(capacity=8, seed=seed)
            for index in range(500):
                reservoir.add(float(index))
            sets.append(reservoir.values())
        assert sets[0] != sets[1]

    def test_percentile_matches_exact_below_capacity(self):
        reservoir = Reservoir(capacity=100)
        samples = [float(i) for i in range(50)]
        for value in samples:
            reservoir.add(value)
        for q in (50.0, 95.0, 99.0):
            assert reservoir.percentile(q) == nearest_rank_percentile(
                samples, q
            )

    def test_percentile_with_tag_returns_exemplar(self):
        reservoir = Reservoir(capacity=10)
        reservoir.add(0.1, tag="t-0")
        reservoir.add(0.9, tag="t-1")
        reservoir.add(0.5, tag="t-2")
        value, tag = reservoir.percentile_with_tag(99.0)
        assert value == 0.9 and tag == "t-1"
        value, tag = reservoir.percentile_with_tag(50.0)
        assert value == 0.5 and tag == "t-2"

    def test_empty_reservoir(self):
        reservoir = Reservoir(capacity=4)
        assert not reservoir
        with pytest.raises(ValueError, match="empty"):
            reservoir.percentile(99.0)
        with pytest.raises(ValueError, match="empty"):
            reservoir.percentile_with_tag(99.0)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            Reservoir(capacity=0)

    def test_default_capacity_covers_full_bench(self):
        # The throughput bench observes 5 levels x 2048 requests; the
        # default cap must keep the bench path exact (and so bit-stable).
        assert DEFAULT_RESERVOIR_CAPACITY >= 5 * 2048


class TestServeMetrics:
    def test_counters_preregistered_at_zero(self):
        metrics = ServeMetrics()
        snapshot = metrics.registry.snapshot()
        for name in ("serve.requests", "serve.errors",
                     "serve.deadline_exceeded"):
            assert snapshot["counters"][name]["value"] == 0.0

    def test_stage_gauges_and_exemplars_after_finalize(self):
        metrics = ServeMetrics()
        for index in range(10):
            metrics.observe_latency(0.01 * (index + 1), trace_id=f"t-{index}")
            metrics.observe_stage(
                "forward", 0.002 * (index + 1), trace_id=f"t-{index}"
            )
        summary = metrics.finalize(wall_s=1.0)
        assert summary["requests"] == 10
        gauges = metrics.registry.snapshot()["gauges"]
        assert gauges["serve.stage.forward.p50_s"]["value"] == pytest.approx(
            0.010
        )
        assert gauges["serve.stage.forward.p99_s"]["value"] == pytest.approx(
            0.020
        )
        # The p99 gauge carries the trace id of the sample behind it.
        assert metrics.exemplars["serve.stage.forward.p99_s"] == "t-9"
        assert metrics.exemplars["serve.latency.p99_s"] == "t-9"

    def test_slo_math(self):
        metrics = ServeMetrics(slo_target=0.9)
        metrics.observe_requests(10)
        for __ in range(10):
            metrics.observe_latency(0.01)
        metrics.observe_error()
        slo = metrics.slo_summary()
        assert slo["requests"] == 10.0
        assert slo["errors"] == 1.0
        assert slo["availability"] == pytest.approx(0.9)
        # 1 bad request, budget (1 - 0.9) * 10 = 1 request: fully spent.
        assert slo["budget_consumed"] == pytest.approx(1.0)
        gauges = metrics.registry.snapshot()["gauges"]
        assert gauges["serve.slo.availability"]["value"] == pytest.approx(0.9)

    def test_slo_with_no_traffic(self):
        slo = ServeMetrics().slo_summary()
        assert slo["requests"] == 0.0
        assert slo["availability"] == 1.0
        assert slo["budget_consumed"] == 0.0

    def test_deadline_misses_count_against_budget(self):
        metrics = ServeMetrics(slo_target=0.5)
        metrics.observe_requests(4)
        for __ in range(4):
            metrics.observe_latency(0.01)
        metrics.observe_deadline_exceeded()
        slo = metrics.slo_summary()
        assert slo["deadline_exceeded"] == 1.0
        assert slo["availability"] == pytest.approx(0.75)
        assert slo["budget_consumed"] == pytest.approx(0.5)
