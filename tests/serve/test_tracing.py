"""Request tracing through the server: tree integrity under concurrency.

The load-bearing guarantee: N requests submitted from N threads
produce N complete, disjoint span trees — correct parent links, the
full stage vocabulary, no orphans — no matter how worker threads
interleave, under both kernel backends. Plus the identity guarantee
tracing rests on: recording a trace changes no prediction bytes.
"""

import threading

import numpy as np
import pytest

from repro.autograd import kernels
from repro.obs import InMemorySink, get_tracer
from repro.obs.context import REQUEST_SPAN, REQUEST_STAGES
from repro.serve import InferenceEngine, ServeServer


@pytest.fixture()
def engine(node_artifact):
    return InferenceEngine.from_artifact(node_artifact)


def collect_trees(spans):
    """Group finished spans into {trace_id: {root, stages}}."""
    trees = {}
    for span in spans:
        trace_id = span.attrs.get("trace")
        if trace_id is None:
            continue  # serve.batch / serve.forward stack spans
        tree = trees.setdefault(trace_id, {"root": None, "stages": []})
        if span.kind == "request":
            tree["root"] = span
        elif span.kind == "stage":
            tree["stages"].append(span)
    return trees


class TestConcurrentTraceIntegrity:
    @pytest.mark.parametrize("backend", ["naive", "fused"])
    def test_n_threads_produce_n_disjoint_complete_trees(
        self, engine, backend
    ):
        num_threads = 8
        sink = InMemorySink()
        ids = [np.array([index, index + 1]) for index in range(num_threads)]
        with kernels.use_backend(backend):
            with get_tracer().collect(sink):
                with ServeServer(engine, max_batch=4, workers=2) as server:
                    barrier = threading.Barrier(num_threads)

                    def client(index):
                        barrier.wait()
                        server.submit(node_ids=ids[index])

                    threads = [
                        threading.Thread(target=client, args=(index,))
                        for index in range(num_threads)
                    ]
                    for thread in threads:
                        thread.start()
                    for thread in threads:
                        thread.join()

        trees = collect_trees(sink.spans)
        assert len(trees) == num_threads
        all_ids = [span.span_id for span in sink.spans]
        assert len(all_ids) == len(set(all_ids)), "span ids must be unique"
        for trace_id, tree in trees.items():
            root = tree["root"]
            assert root is not None, f"{trace_id}: root span missing"
            assert root.name == REQUEST_SPAN
            assert root.parent_id is None and root.depth == 0
            assert root.attrs["status"] == "ok"
            names = [span.name for span in tree["stages"]]
            assert sorted(names) == sorted(REQUEST_STAGES), (
                f"{trace_id}: stages {names}"
            )
            for span in tree["stages"]:
                assert span.parent_id == root.span_id, (
                    f"{trace_id}: {span.name} orphaned "
                    f"(parent {span.parent_id} != root {root.span_id})"
                )
                assert span.depth == 1
                assert span.attrs["trace"] == trace_id
                assert span.t_end is not None

    def test_stage_windows_sit_inside_the_root(self, engine):
        sink = InMemorySink()
        with get_tracer().collect(sink):
            with ServeServer(engine, max_batch=4) as server:
                server.submit(node_ids=np.array([0, 1, 2]))
        ((_, tree),) = collect_trees(sink.spans).items()
        root = tree["root"]
        for span in tree["stages"]:
            assert span.t_start >= root.t_start - 1e-9
            assert span.t_end <= root.t_end + 1e-9
        stage_sum = sum(span.duration for span in tree["stages"])
        # enqueue/queue_wait overlap by a hair; everything else is
        # sequential, so the sum stays in the same ballpark as the root.
        assert 0.0 < stage_sum <= 2.0 * root.duration

    def test_error_trees_are_complete_too(self, engine):
        sink = InMemorySink()
        with get_tracer().collect(sink):
            with ServeServer(engine, max_batch=4) as server:
                pending = server.submit_async(
                    node_ids=np.array([10 ** 9])  # out of range -> engine error
                )
                with pytest.raises(Exception):
                    pending.result(timeout=30)
        ((_, tree),) = collect_trees(sink.spans).items()
        assert tree["root"].attrs["status"] == "error"
        names = {span.name for span in tree["stages"]}
        # forward/slice never happened; the queue-side stages and the
        # terminal resolve did.
        assert {"enqueue", "queue_wait", "batch_assemble", "resolve"} <= names
        assert engine.metrics.registry.counter("serve.errors").value == 1.0


class TestTracedUntracedIdentity:
    @pytest.mark.parametrize("backend", ["naive", "fused"])
    def test_predictions_bit_identical_with_and_without_sink(
        self, node_artifact, backend
    ):
        ids = np.arange(6)
        outputs = []
        for traced in (False, True):
            engine = InferenceEngine.from_artifact(node_artifact)
            sink = InMemorySink()
            with kernels.use_backend(backend):
                if traced:
                    with get_tracer().collect(sink):
                        with ServeServer(engine, max_batch=8) as server:
                            outputs.append(server.submit(node_ids=ids))
                else:
                    with ServeServer(engine, max_batch=8) as server:
                        outputs.append(server.submit(node_ids=ids))
        assert np.array_equal(outputs[0], outputs[1])

    def test_direct_predict_records_no_request_spans(self, engine):
        sink = InMemorySink()
        with get_tracer().collect(sink):
            engine.predict(node_ids=np.arange(3))
        assert collect_trees(sink.spans) == {}
        assert any(span.name == "serve.forward" for span in sink.spans)


class TestDeadlineAccounting:
    def test_deadline_misses_counted_not_shed(self, engine):
        with ServeServer(engine, max_batch=4) as server:
            value = server.submit(node_ids=np.array([0]), deadline_s=0.0)
        assert value is not None  # the answer still came back
        counters = engine.metrics.registry
        assert counters.counter("serve.deadline_exceeded").value == 1.0
        assert counters.counter("serve.errors").value == 0.0

    def test_generous_deadline_does_not_count(self, engine):
        with ServeServer(engine, max_batch=4) as server:
            server.submit(node_ids=np.array([0]), deadline_s=60.0)
        assert (
            engine.metrics.registry.counter("serve.deadline_exceeded").value
            == 0.0
        )

    def test_slo_summary_in_finalize(self, engine):
        with ServeServer(engine, max_batch=4) as server:
            server.submit(node_ids=np.array([0]), deadline_s=0.0)
            server.submit(node_ids=np.array([1]), deadline_s=60.0)
        summary = engine.metrics.finalize()
        slo = summary["slo"]
        assert slo["deadline_exceeded"] == 1.0
        assert slo["errors"] == 0.0
        assert slo["availability"] == 0.5
        assert "stages" in summary
        assert set(summary["stages"]) == set(REQUEST_STAGES)
