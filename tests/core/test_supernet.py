"""The SANE supernet: mixtures, parameter groups, derivation."""

import numpy as np
import pytest

from repro.core.search_space import SearchSpace
from repro.core.supernet import SaneSupernet
from repro.gnn.common import GraphCache

SMALL_SPACE = SearchSpace(
    num_layers=2, node_ops=("gcn", "gat", "sage-mean"), layer_ops=("concat", "max")
)


def make_supernet(tiny_graph, seed=0, **kwargs):
    return SaneSupernet(
        space=kwargs.pop("space", SMALL_SPACE),
        in_dim=tiny_graph.num_features,
        hidden_dim=8,
        num_classes=tiny_graph.num_classes,
        rng=np.random.default_rng(seed),
        **kwargs,
    )


class TestConstruction:
    def test_alpha_shapes(self, tiny_graph):
        net = make_supernet(tiny_graph)
        assert net.alpha_node.shape == (2, 3)
        assert net.alpha_skip.shape == (2, 2)
        assert net.alpha_layer.shape == (1, 2)

    def test_candidate_counts(self, tiny_graph):
        net = make_supernet(tiny_graph)
        assert len(net.node_candidates) == 2
        assert all(len(layer) == 3 for layer in net.node_candidates)
        assert len(net.layer_candidates) == 2

    def test_invalid_epsilon(self, tiny_graph):
        with pytest.raises(ValueError, match="epsilon"):
            make_supernet(tiny_graph, epsilon=1.5)


class TestParameterGroups:
    def test_disjoint_and_complete(self, tiny_graph):
        net = make_supernet(tiny_graph)
        arch_ids = {id(p) for p in net.arch_parameters()}
        weight_ids = {id(p) for p in net.weight_parameters()}
        assert not arch_ids & weight_ids
        all_ids = {id(p) for p in net.parameters()}
        assert arch_ids | weight_ids == all_ids

    def test_arch_parameters_are_the_alphas(self, tiny_graph):
        net = make_supernet(tiny_graph)
        assert len(net.arch_parameters()) == 3


class TestForward:
    def test_output_shape(self, tiny_graph, tiny_cache):
        net = make_supernet(tiny_graph)
        out = net(tiny_graph.features, tiny_cache)
        assert out.shape == (tiny_graph.num_nodes, tiny_graph.num_classes)

    def test_gradients_reach_alphas_and_weights(self, tiny_graph, tiny_cache):
        net = make_supernet(tiny_graph)
        net(tiny_graph.features, tiny_cache).sum().backward()
        assert net.alpha_node.grad is not None
        assert net.alpha_skip.grad is not None
        assert net.alpha_layer.grad is not None
        assert net.input_proj.weight.grad is not None

    def test_without_layer_aggregator(self, tiny_graph, tiny_cache):
        net = make_supernet(tiny_graph, use_layer_aggregator=False)
        out = net(tiny_graph.features, tiny_cache)
        assert out.shape == (tiny_graph.num_nodes, tiny_graph.num_classes)
        assert len(net.arch_parameters()) == 2

    def test_eval_deterministic(self, tiny_graph, tiny_cache):
        net = make_supernet(tiny_graph)
        net.eval()
        a = net(tiny_graph.features, tiny_cache).data
        b = net(tiny_graph.features, tiny_cache).data
        np.testing.assert_allclose(a, b)

    def test_alpha_concentration_recovers_single_op(self, tiny_graph, tiny_cache):
        """With one-hot-ish alphas the mixture equals the single op path."""
        net = make_supernet(tiny_graph, dropout=0.0, normalize_ops=False)
        net.eval()
        net.alpha_node.data[:] = 0.0  # lint: disable=tape-mutation -- test pins alpha logits directly; no backward pending
        net.alpha_node.data[:, 0] = 60.0  # softmax -> ~1 on 'gcn'  # lint: disable=tape-mutation -- test pins alpha logits directly; no backward pending
        out_mixture = net(tiny_graph.features, tiny_cache).data

        # Manually run the gcn-only path.
        from repro.autograd import Tensor, functional as F, ops

        h = F.relu(net.input_proj(Tensor(tiny_graph.features)))
        skips = []
        for layer_index in range(2):
            h = F.relu(net.node_candidates[layer_index][0](h, tiny_cache))
            weights = F.softmax(ops.getitem(net.alpha_skip, layer_index), axis=-1)
            skips.append(h * weights[0])
        layer_weights = F.softmax(ops.getitem(net.alpha_layer, 0), axis=-1)
        mixed = None
        for i, (agg, proj) in enumerate(zip(net.layer_candidates, net.layer_projections)):
            term = proj(agg(skips)) * layer_weights[i]
            mixed = term if mixed is None else mixed + term
        expected = net.classifier(mixed).data
        np.testing.assert_allclose(out_mixture, expected, atol=1e-8)


class TestEpsilon:
    def test_epsilon_one_uses_one_hot_mixtures(self, tiny_graph, tiny_cache):
        net = make_supernet(tiny_graph, epsilon=1.0)
        net.train()
        # One-hot mixtures pass no gradient to alpha.
        net(tiny_graph.features, tiny_cache).sum().backward()
        assert net.alpha_node.grad is None or np.allclose(net.alpha_node.grad, 0.0)

    def test_epsilon_ignored_in_eval(self, tiny_graph, tiny_cache):
        net = make_supernet(tiny_graph, epsilon=1.0, dropout=0.0)
        net.eval()
        a = net(tiny_graph.features, tiny_cache).data
        b = net(tiny_graph.features, tiny_cache).data
        np.testing.assert_allclose(a, b)


class TestDerivation:
    def test_derive_picks_argmax(self, tiny_graph):
        net = make_supernet(tiny_graph)
        net.alpha_node.data[:] = 0.0  # lint: disable=tape-mutation -- test pins alpha logits directly; no backward pending
        net.alpha_node.data[0, 1] = 5.0  # gat at layer 0  # lint: disable=tape-mutation -- test pins alpha logits directly; no backward pending
        net.alpha_node.data[1, 2] = 5.0  # sage-mean at layer 1  # lint: disable=tape-mutation -- test pins alpha logits directly; no backward pending
        net.alpha_skip.data[:] = 0.0  # lint: disable=tape-mutation -- test pins alpha logits directly; no backward pending
        net.alpha_skip.data[:, 0] = 5.0  # identity  # lint: disable=tape-mutation -- test pins alpha logits directly; no backward pending
        net.alpha_layer.data[:] = 0.0  # lint: disable=tape-mutation -- test pins alpha logits directly; no backward pending
        net.alpha_layer.data[0, 1] = 5.0  # max  # lint: disable=tape-mutation -- test pins alpha logits directly; no backward pending
        arch = net.derive(np.random.default_rng(0))
        assert arch.node_aggregators == ("gat", "sage-mean")
        assert arch.skip_connections == ("identity", "identity")
        assert arch.layer_aggregator == "max"

    def test_derive_is_member_of_space(self, tiny_graph):
        net = make_supernet(tiny_graph)
        assert SMALL_SPACE.contains(net.derive(np.random.default_rng(0)))

    def test_uniform_alpha_ties_break_randomly(self, tiny_graph):
        net = make_supernet(tiny_graph)
        net.alpha_node.data[:] = 0.0  # lint: disable=tape-mutation -- test pins alpha logits directly; no backward pending
        net.alpha_skip.data[:] = 0.0  # lint: disable=tape-mutation -- test pins alpha logits directly; no backward pending
        net.alpha_layer.data[:] = 0.0  # lint: disable=tape-mutation -- test pins alpha logits directly; no backward pending
        rng = np.random.default_rng(0)
        derived = {net.derive(rng) for __ in range(30)}
        assert len(derived) > 1  # not stuck on index 0

    def test_derive_topk_ordering(self, tiny_graph):
        net = make_supernet(tiny_graph)
        top = net.derive_topk(5)
        assert len(top) == 5
        assert len(set(top)) == 5

    def test_derive_topk_first_matches_argmax(self, tiny_graph):
        net = make_supernet(tiny_graph)
        net.alpha_node.data[:] = np.random.default_rng(2).normal(size=net.alpha_node.shape)  # lint: disable=tape-mutation -- test pins alpha logits directly; no backward pending
        net.alpha_skip.data[:] = np.random.default_rng(3).normal(size=net.alpha_skip.shape)  # lint: disable=tape-mutation -- test pins alpha logits directly; no backward pending
        net.alpha_layer.data[:] = np.random.default_rng(4).normal(size=net.alpha_layer.shape)  # lint: disable=tape-mutation -- test pins alpha logits directly; no backward pending
        top1 = net.derive_topk(1)[0]
        argmax = net.derive(np.random.default_rng(0))
        assert top1 == argmax

    def test_derive_topk_validates_k(self, tiny_graph):
        with pytest.raises(ValueError, match="k must be"):
            make_supernet(tiny_graph).derive_topk(0)

    def test_derive_topk_matches_brute_force(self, tiny_graph):
        """The lazy k-best expansion equals exhaustive ranking."""
        net = make_supernet(tiny_graph)
        rng = np.random.default_rng(9)
        net.alpha_node.data[:] = rng.normal(size=net.alpha_node.shape)  # lint: disable=tape-mutation -- test pins alpha logits directly; no backward pending
        net.alpha_skip.data[:] = rng.normal(size=net.alpha_skip.shape)  # lint: disable=tape-mutation -- test pins alpha logits directly; no backward pending
        net.alpha_layer.data[:] = rng.normal(size=net.alpha_layer.shape)  # lint: disable=tape-mutation -- test pins alpha logits directly; no backward pending

        def softmax(alpha):
            exp = np.exp(alpha - alpha.max(axis=-1, keepdims=True))
            return exp / exp.sum(axis=-1, keepdims=True)

        w_node = softmax(net.alpha_node.data)
        w_skip = softmax(net.alpha_skip.data)
        w_layer = softmax(net.alpha_layer.data)
        scored = []
        for arch in SMALL_SPACE.enumerate():
            score = w_layer[0][SMALL_SPACE.layer_ops.index(arch.layer_aggregator)]
            for i, (node, skip) in enumerate(
                zip(arch.node_aggregators, arch.skip_connections)
            ):
                score *= w_node[i][SMALL_SPACE.node_ops.index(node)]
                score *= w_skip[i][SMALL_SPACE.skip_ops.index(skip)]
            scored.append((score, arch))
        scored.sort(key=lambda pair: -pair[0])
        expected = [arch for __, arch in scored[:6]]
        assert net.derive_topk(6) == expected

    def test_derive_topk_scales_to_deep_spaces(self, tiny_graph):
        """K=6 (3.4e8 architectures) must not enumerate."""
        import time

        from repro.core.search_space import SearchSpace as FullSpace

        space = FullSpace(num_layers=6)
        net = SaneSupernet(
            space, tiny_graph.num_features, 8, tiny_graph.num_classes,
            np.random.default_rng(0),
        )
        started = time.perf_counter()
        top = net.derive_topk(4)
        assert time.perf_counter() - started < 5.0
        assert len(top) == 4
        assert len(set(top)) == 4
