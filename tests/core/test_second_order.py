"""Second-order DARTS update (xi > 0 of Eq. 8)."""

import numpy as np

from repro.core.search import SaneSearcher, SearchConfig
from repro.core.search_space import SearchSpace

SPACE = SearchSpace(num_layers=2, node_ops=("gcn", "gat"), layer_ops=("concat",))


class TestSecondOrder:
    def test_runs_and_returns_architecture(self, tiny_graph):
        config = SearchConfig(epochs=3, hidden_dim=8, xi=5e-3)
        result = SaneSearcher(SPACE, tiny_graph, config, seed=0).search()
        assert SPACE.contains(result.architecture)

    def test_alphas_move(self, tiny_graph):
        config = SearchConfig(epochs=3, hidden_dim=8, xi=5e-3)
        searcher = SaneSearcher(SPACE, tiny_graph, config, seed=0)
        before = searcher.supernet.alpha_node.data.copy()
        searcher.search()
        assert not np.allclose(before, searcher.supernet.alpha_node.data)

    def test_weights_restored_after_virtual_step(self, tiny_graph):
        """The alpha step must not permanently change w."""
        config = SearchConfig(epochs=1, hidden_dim=8, xi=5e-3)
        searcher = SaneSearcher(SPACE, tiny_graph, config, seed=0)
        weights_before = [w.data.copy() for w in searcher.supernet.weight_parameters()]
        searcher._alpha_step()
        for before, param in zip(weights_before, searcher.supernet.weight_parameters()):
            np.testing.assert_allclose(before, param.data)

    def test_differs_from_first_order(self, tiny_graph):
        first = SaneSearcher(
            SPACE, tiny_graph, SearchConfig(epochs=2, hidden_dim=8, xi=0.0), seed=0
        )
        second = SaneSearcher(
            SPACE, tiny_graph, SearchConfig(epochs=2, hidden_dim=8, xi=1e-2), seed=0
        )
        first.search()
        second.search()
        assert not np.allclose(
            first.supernet.alpha_node.data, second.supernet.alpha_node.data
        )

    def test_xi_zero_matches_plain_path(self, tiny_graph):
        a = SaneSearcher(
            SPACE, tiny_graph, SearchConfig(epochs=2, hidden_dim=8, xi=0.0), seed=1
        )
        b = SaneSearcher(
            SPACE, tiny_graph, SearchConfig(epochs=2, hidden_dim=8), seed=1
        )
        a.search()
        b.search()
        np.testing.assert_allclose(a.supernet.alpha_node.data, b.supernet.alpha_node.data)
