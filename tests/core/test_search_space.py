"""SANE search space: size formula, sampling, enumeration, validation."""

import numpy as np
import pytest

from repro.core.search_space import (
    LAYER_OPS,
    NODE_OPS,
    SKIP_OPS,
    Architecture,
    SearchSpace,
)


class TestOperationSets:
    def test_paper_counts(self):
        assert len(NODE_OPS) == 11
        assert len(LAYER_OPS) == 3
        assert len(SKIP_OPS) == 2


class TestArchitecture:
    def test_valid_construction(self):
        arch = Architecture(("gcn", "gat"), ("identity", "zero"), "max")
        assert arch.num_layers == 2
        assert arch.skip_flags == (True, False)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="skip choice"):
            Architecture(("gcn",), ("identity", "zero"), "max")  # lint: disable=invalid-genotype -- deliberately invalid; asserts the constructor rejects it

    def test_unknown_node_op_raises(self):
        with pytest.raises(ValueError, match="node aggregators"):
            Architecture(("conv",), ("identity",), "max")  # lint: disable=invalid-genotype -- deliberately invalid; asserts the constructor rejects it

    def test_unknown_layer_op_raises(self):
        with pytest.raises(ValueError, match="layer aggregator"):
            Architecture(("gcn",), ("identity",), "mean")  # lint: disable=invalid-genotype -- deliberately invalid; asserts the constructor rejects it

    def test_unknown_skip_raises(self):
        with pytest.raises(ValueError, match="skip ops"):
            Architecture(("gcn",), ("maybe",), "max")  # lint: disable=invalid-genotype -- deliberately invalid; asserts the constructor rejects it

    def test_describe_format(self):
        arch = Architecture(("gcn", "gat"), ("identity", "zero"), "lstm")
        text = str(arch)
        assert "gcn -> gat" in text
        assert "IZ" in text
        assert "lstm" in text

    def test_hashable_and_equal(self):
        a = Architecture(("gcn",), ("identity",), "max")
        b = Architecture(("gcn",), ("identity",), "max")
        assert a == b
        assert hash(a) == hash(b)


class TestSearchSpace:
    def test_paper_size_for_k3(self):
        """Section III-C: 11^3 * 2^3 * 3 = 31,944."""
        assert SearchSpace(num_layers=3).size() == 31_944

    def test_size_formula_general(self):
        space = SearchSpace(num_layers=2, node_ops=("gcn", "gat"), layer_ops=("max",))
        assert space.size() == 2**2 * 2**2 * 1

    def test_invalid_depth(self):
        with pytest.raises(ValueError, match="num_layers"):
            SearchSpace(num_layers=0)

    def test_empty_ops_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            SearchSpace(num_layers=1, node_ops=())

    def test_sample_is_member(self):
        space = SearchSpace(num_layers=3)
        rng = np.random.default_rng(0)
        for __ in range(20):
            arch = space.sample(rng)
            assert space.contains(arch)
            assert arch.num_layers == 3

    def test_sample_deterministic_with_seed(self):
        space = SearchSpace(num_layers=3)
        a = space.sample(np.random.default_rng(5))
        b = space.sample(np.random.default_rng(5))
        assert a == b

    def test_sample_covers_space(self):
        space = SearchSpace(num_layers=1, node_ops=("gcn", "gat"))
        rng = np.random.default_rng(0)
        seen = {space.sample(rng) for __ in range(200)}
        assert len(seen) == space.size()

    def test_enumerate_count_matches_size(self):
        space = SearchSpace(num_layers=2, node_ops=("gcn", "gat", "gin"))
        archs = list(space.enumerate())
        assert len(archs) == space.size()
        assert len(set(archs)) == space.size()

    def test_contains_rejects_wrong_depth(self):
        space = SearchSpace(num_layers=2)
        arch = Architecture(("gcn",), ("identity",), "max")
        assert not space.contains(arch)

    def test_repr(self):
        assert "31944" in repr(SearchSpace(num_layers=3))


class TestEmulation:
    """Table II: the space emulates the human-designed models."""

    @pytest.mark.parametrize(
        "ops",
        [
            ("gcn", "gcn", "gcn"),
            ("sage-mean", "sage-mean", "sage-mean"),
            ("gat", "gat", "gat"),
            ("gin", "gin", "gin"),
            ("geniepath", "geniepath", "geniepath"),
        ],
    )
    def test_uniform_stacks_are_members(self, ops):
        space = SearchSpace(num_layers=3)
        # Plain stacking = all skips ZERO except the last layer + any
        # JK choice; JK-Networks = all identity + concat/max/lstm.
        plain = Architecture(ops, ("zero", "zero", "identity"), "concat")
        jk = Architecture(ops, ("identity",) * 3, "concat")
        assert space.contains(plain)
        assert space.contains(jk)

    def test_gat_variants_present(self):
        for variant in ("gat", "gat-sym", "gat-cos", "gat-linear", "gat-gen-linear"):
            assert variant in NODE_OPS
