"""Algorithm 1: the bi-level differentiable search loop."""

import numpy as np
import pytest

from repro.core.search import SaneSearcher, SearchConfig, derive_from_alphas
from repro.core.search_space import SearchSpace

SMALL_SPACE = SearchSpace(
    num_layers=2, node_ops=("gcn", "gat", "sage-mean"), layer_ops=("concat", "max")
)
FAST = SearchConfig(epochs=4, hidden_dim=8, dropout=0.1)


class TestSearchLoop:
    def test_returns_architecture_in_space(self, tiny_graph):
        result = SaneSearcher(SMALL_SPACE, tiny_graph, FAST, seed=0).search()
        assert SMALL_SPACE.contains(result.architecture)

    def test_history_and_snapshots_lengths(self, tiny_graph):
        result = SaneSearcher(SMALL_SPACE, tiny_graph, FAST, seed=0).search()
        assert len(result.history) == FAST.epochs
        assert len(result.alpha_snapshots) == FAST.epochs
        times = [t for t, __ in result.history]
        assert times == sorted(times)

    def test_search_time_positive(self, tiny_graph):
        result = SaneSearcher(SMALL_SPACE, tiny_graph, FAST, seed=0).search()
        assert result.search_time > 0

    def test_alphas_move_when_epsilon_zero(self, tiny_graph):
        searcher = SaneSearcher(SMALL_SPACE, tiny_graph, FAST, seed=0)
        before = searcher.supernet.alpha_node.data.copy()
        searcher.search()
        after = searcher.supernet.alpha_node.data
        assert not np.allclose(before, after)

    def test_alphas_frozen_when_epsilon_one(self, tiny_graph):
        config = FAST.replace(epsilon=1.0)
        searcher = SaneSearcher(SMALL_SPACE, tiny_graph, config, seed=0)
        before = searcher.supernet.alpha_node.data.copy()
        searcher.search()
        np.testing.assert_allclose(searcher.supernet.alpha_node.data, before)

    def test_weights_train_even_with_epsilon_one(self, tiny_graph):
        config = FAST.replace(epsilon=1.0)
        searcher = SaneSearcher(SMALL_SPACE, tiny_graph, config, seed=0)
        before = searcher.supernet.input_proj.weight.data.copy()
        searcher.search()
        assert not np.allclose(searcher.supernet.input_proj.weight.data, before)

    def test_deterministic_given_seed(self, tiny_graph):
        a = SaneSearcher(SMALL_SPACE, tiny_graph, FAST, seed=3).search()
        b = SaneSearcher(SMALL_SPACE, tiny_graph, FAST, seed=3).search()
        assert a.architecture == b.architecture

    def test_inductive_mode(self, tiny_ppi):
        result = SaneSearcher(SMALL_SPACE, tiny_ppi, FAST, seed=0).search()
        assert SMALL_SPACE.contains(result.architecture)
        assert len(result.history) == FAST.epochs

    def test_rejects_unknown_data(self):
        with pytest.raises(TypeError, match="search over"):
            SaneSearcher(SMALL_SPACE, [1, 2, 3], FAST)

    def test_validation_score_in_unit_interval(self, tiny_graph):
        searcher = SaneSearcher(SMALL_SPACE, tiny_graph, FAST, seed=0)
        score = searcher.validation_score()
        assert 0.0 <= score <= 1.0


class TestDeriveAt:
    def test_replays_snapshots(self, tiny_graph):
        result = SaneSearcher(SMALL_SPACE, tiny_graph, FAST, seed=0).search()
        arch_first = result.derive_at(0, np.random.default_rng(0))
        arch_last = result.derive_at(FAST.epochs - 1, np.random.default_rng(0))
        assert SMALL_SPACE.contains(arch_first)
        assert SMALL_SPACE.contains(arch_last)

    def test_final_snapshot_matches_result(self, tiny_graph):
        result = SaneSearcher(SMALL_SPACE, tiny_graph, FAST, seed=0).search()
        rederived = derive_from_alphas(
            SMALL_SPACE, result.alpha_snapshots[-1], np.random.default_rng(0)
        )
        # Non-tied alphas derive deterministically.
        assert rederived == result.architecture


class TestDeriveTieBreaking:
    """Tied alpha rows break randomly — but reproducibly under one seed."""

    TIED = {
        "node": np.zeros((2, 3)),  # every op tied on every edge
        "skip": np.zeros((2, 2)),
        "layer": np.zeros((1, 2)),
    }

    def test_same_seed_derives_same_architecture(self):
        first = derive_from_alphas(
            SMALL_SPACE, self.TIED, np.random.default_rng(42)
        )
        second = derive_from_alphas(
            SMALL_SPACE, self.TIED, np.random.default_rng(42)
        )
        assert first == second

    def test_identical_tied_rows_pick_identically_within_one_call(self):
        # Two rows with the same tie set must not depend on row order in a
        # way a reseeded rng would hide: re-running the whole derivation
        # with the same seed reproduces every row's pick.
        for seed in range(5):
            archs = [
                derive_from_alphas(
                    SMALL_SPACE, self.TIED, np.random.default_rng(seed)
                )
                for __ in range(2)
            ]
            assert archs[0] == archs[1]
            assert SMALL_SPACE.contains(archs[0])

    def test_different_seeds_can_differ(self):
        picks = {
            derive_from_alphas(SMALL_SPACE, self.TIED, np.random.default_rng(s))
            for s in range(20)
        }
        assert len(picks) > 1  # the tie really is broken randomly

    def test_default_rng_is_seeded_and_stable(self):
        # rng=None falls back to a fixed seed — calling twice must agree.
        assert derive_from_alphas(SMALL_SPACE, self.TIED) == derive_from_alphas(
            SMALL_SPACE, self.TIED
        )


class TestSearchConfig:
    def test_replace(self):
        config = SearchConfig(epochs=10)
        assert config.replace(epochs=5).epochs == 5
        assert config.epochs == 10
