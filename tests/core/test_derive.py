"""Derivation and retraining of searched architectures."""

import numpy as np

from repro.core.derive import architecture_to_model, evaluate_architecture, retrain
from repro.core.search_space import Architecture
from repro.train.trainer import TrainConfig

ARCH = Architecture(
    ("gcn", "gat", "sage-mean"), ("identity", "zero", "identity"), "concat"
)


class TestArchitectureToModel:
    def test_fields_transferred(self, rng):
        model = architecture_to_model(ARCH, in_dim=10, num_classes=3, rng=rng)
        assert model.node_aggregator_names == ["gcn", "gat", "sage-mean"]
        assert model.skip_connections == [True, False, True]
        assert model.layer_aggregator_name == "concat"

    def test_forward_works(self, tiny_graph, tiny_cache, rng):
        model = architecture_to_model(
            ARCH, tiny_graph.num_features, tiny_graph.num_classes, rng, hidden_dim=8
        )
        out = model(tiny_graph.features, tiny_cache)
        assert out.shape == (tiny_graph.num_nodes, tiny_graph.num_classes)


class TestRetrain:
    def test_learns_above_chance(self, tiny_graph):
        config = TrainConfig(epochs=60, patience=20)
        result = retrain(ARCH, tiny_graph, seed=0, hidden_dim=8, train_config=config)
        chance = 1.0 / tiny_graph.num_classes
        assert result.test_score > chance + 0.15

    def test_deterministic_given_seed(self, tiny_graph):
        config = TrainConfig(epochs=10, patience=10)
        a = retrain(ARCH, tiny_graph, seed=1, hidden_dim=8, train_config=config)
        b = retrain(ARCH, tiny_graph, seed=1, hidden_dim=8, train_config=config)
        assert a.test_score == b.test_score

    def test_inductive_data(self, tiny_ppi):
        config = TrainConfig(epochs=15, patience=15)
        result = retrain(ARCH, tiny_ppi, seed=0, hidden_dim=8, train_config=config)
        assert 0.0 <= result.test_score <= 1.0


class TestEvaluateArchitecture:
    def test_returns_score_per_seed(self, tiny_graph):
        config = TrainConfig(epochs=10, patience=10)
        vals, tests = evaluate_architecture(
            ARCH, tiny_graph, seeds=[0, 1, 2], hidden_dim=8, train_config=config
        )
        assert len(vals) == 3
        assert len(tests) == 3
        assert all(0.0 <= v <= 1.0 for v in vals + tests)
