"""End-to-end search equivalence of the naive and fused kernel backends.

The strongest fused-kernel guarantee: an identical seeded search run —
supernet forwards, bi-level updates, derivation — produces the same
``Architecture`` (and the same alpha trajectory) under either backend.
"""

import numpy as np

from repro.autograd import kernels
from repro.core.search import SaneSearcher, SearchConfig
from repro.core.search_space import SearchSpace

SPACE = SearchSpace(
    num_layers=2,
    node_ops=("gcn", "gat", "sage-mean", "sage-max", "gin"),
    layer_ops=("concat", "max"),
)
CONFIG = SearchConfig(epochs=3, hidden_dim=8, dropout=0.1)


def _search(backend: str, tiny_graph):
    with kernels.use_backend(backend):
        result = SaneSearcher(SPACE, tiny_graph, CONFIG, seed=11).search()
    return result


def test_seeded_search_derives_identical_architecture(tiny_graph):
    naive = _search("naive", tiny_graph)
    fused = _search("fused", tiny_graph)
    assert fused.architecture == naive.architecture


def test_seeded_search_alpha_trajectories_match(tiny_graph):
    naive = _search("naive", tiny_graph)
    fused = _search("fused", tiny_graph)
    assert len(fused.alpha_snapshots) == len(naive.alpha_snapshots)
    for snap_fused, snap_naive in zip(
        fused.alpha_snapshots, naive.alpha_snapshots
    ):
        assert snap_fused.keys() == snap_naive.keys()
        for key in snap_fused:
            np.testing.assert_allclose(
                snap_fused[key], snap_naive[key], atol=1e-8, rtol=0
            )
